// Package symexec is the symbolic execution engine at the heart of
// the In-Net controller — the role SymNet plays in the paper (§3,
// §4.3). It executes abstract models of network elements over
// symbolic packets: each header field is bound to an expression
// (constant or variable), variables carry interval-set constraints,
// and element models split flows when processing branches.
//
// The models obey the paper's tractability rules: no loops, no
// dynamic memory allocation, and middlebox state is pushed into the
// flow itself (synthetic fields such as the stateful-firewall tag of
// Fig. 2), so verification cost grows linearly with path length.
package symexec

import (
	"fmt"
	"strings"
)

// Interval is an inclusive [Lo, Hi] range of uint64 values.
type Interval struct {
	Lo, Hi uint64
}

// IntervalSet is an immutable, sorted, disjoint set of intervals. The
// zero value is the empty set. All operations return new sets.
type IntervalSet struct {
	iv []Interval
}

// Empty is the empty interval set.
var Empty = IntervalSet{}

// Single returns the set {v}.
func Single(v uint64) IntervalSet { return Span(v, v) }

// Span returns the set [lo, hi]; an inverted span is empty.
func Span(lo, hi uint64) IntervalSet {
	if lo > hi {
		return Empty
	}
	return IntervalSet{iv: []Interval{{lo, hi}}}
}

// Full returns the complete set for a field of the given bit width.
func Full(bits int) IntervalSet {
	return Span(0, maxFor(bits))
}

func maxFor(bits int) uint64 {
	if bits >= 64 {
		return ^uint64(0)
	}
	return (uint64(1) << bits) - 1
}

// FromIntervals builds a normalized set from arbitrary intervals.
func FromIntervals(ivs ...Interval) IntervalSet {
	s := Empty
	for _, iv := range ivs {
		s = s.Union(Span(iv.Lo, iv.Hi))
	}
	return s
}

// IsEmpty reports whether the set has no values.
func (s IntervalSet) IsEmpty() bool { return len(s.iv) == 0 }

// IsSingle reports whether the set holds exactly one value, and
// returns it.
func (s IntervalSet) IsSingle() (uint64, bool) {
	if len(s.iv) == 1 && s.iv[0].Lo == s.iv[0].Hi {
		return s.iv[0].Lo, true
	}
	return 0, false
}

// Contains reports whether v is in the set.
func (s IntervalSet) Contains(v uint64) bool {
	for _, iv := range s.iv {
		if v >= iv.Lo && v <= iv.Hi {
			return true
		}
		if v < iv.Lo {
			return false
		}
	}
	return false
}

// Count returns the number of values in the set, saturating at
// MaxUint64.
func (s IntervalSet) Count() uint64 {
	var n uint64
	for _, iv := range s.iv {
		d := iv.Hi - iv.Lo
		if d == ^uint64(0) {
			return ^uint64(0)
		}
		d++
		if n+d < n {
			return ^uint64(0)
		}
		n += d
	}
	return n
}

// Min returns the smallest value; ok is false for the empty set.
func (s IntervalSet) Min() (uint64, bool) {
	if len(s.iv) == 0 {
		return 0, false
	}
	return s.iv[0].Lo, true
}

// Intersect returns s ∩ t.
func (s IntervalSet) Intersect(t IntervalSet) IntervalSet {
	var out []Interval
	i, j := 0, 0
	for i < len(s.iv) && j < len(t.iv) {
		a, b := s.iv[i], t.iv[j]
		lo := max64(a.Lo, b.Lo)
		hi := min64(a.Hi, b.Hi)
		if lo <= hi {
			out = append(out, Interval{lo, hi})
		}
		if a.Hi < b.Hi {
			i++
		} else {
			j++
		}
	}
	return IntervalSet{iv: out}
}

// Union returns s ∪ t.
func (s IntervalSet) Union(t IntervalSet) IntervalSet {
	merged := make([]Interval, 0, len(s.iv)+len(t.iv))
	i, j := 0, 0
	for i < len(s.iv) || j < len(t.iv) {
		var next Interval
		if j >= len(t.iv) || (i < len(s.iv) && s.iv[i].Lo <= t.iv[j].Lo) {
			next = s.iv[i]
			i++
		} else {
			next = t.iv[j]
			j++
		}
		if n := len(merged); n > 0 && (next.Lo <= merged[n-1].Hi ||
			(merged[n-1].Hi != ^uint64(0) && next.Lo == merged[n-1].Hi+1)) {
			if next.Hi > merged[n-1].Hi {
				merged[n-1].Hi = next.Hi
			}
		} else {
			merged = append(merged, next)
		}
	}
	return IntervalSet{iv: merged}
}

// Complement returns the complement of s within a field of the given
// bit width.
func (s IntervalSet) Complement(bits int) IntervalSet {
	maxV := maxFor(bits)
	var out []Interval
	next := uint64(0)
	for _, iv := range s.iv {
		if iv.Lo > maxV {
			break
		}
		if iv.Lo > next {
			out = append(out, Interval{next, iv.Lo - 1})
		}
		if iv.Hi >= maxV {
			return IntervalSet{iv: out}
		}
		next = iv.Hi + 1
	}
	if next <= maxV {
		out = append(out, Interval{next, maxV})
	}
	return IntervalSet{iv: out}
}

// Minus returns s \ t within the given bit width.
func (s IntervalSet) Minus(t IntervalSet, bits int) IntervalSet {
	return s.Intersect(t.Complement(bits))
}

// SubsetOf reports whether every value of s is in t.
func (s IntervalSet) SubsetOf(t IntervalSet) bool {
	return s.Intersect(t).Equal(s)
}

// Overlaps reports whether s ∩ t is non-empty.
func (s IntervalSet) Overlaps(t IntervalSet) bool {
	return !s.Intersect(t).IsEmpty()
}

// Equal reports set equality.
func (s IntervalSet) Equal(t IntervalSet) bool {
	if len(s.iv) != len(t.iv) {
		return false
	}
	for i := range s.iv {
		if s.iv[i] != t.iv[i] {
			return false
		}
	}
	return true
}

// Intervals returns a copy of the underlying intervals.
func (s IntervalSet) Intervals() []Interval {
	return append([]Interval(nil), s.iv...)
}

func (s IntervalSet) String() string {
	if s.IsEmpty() {
		return "∅"
	}
	parts := make([]string, len(s.iv))
	for i, iv := range s.iv {
		if iv.Lo == iv.Hi {
			parts[i] = fmt.Sprintf("%d", iv.Lo)
		} else {
			parts[i] = fmt.Sprintf("%d-%d", iv.Lo, iv.Hi)
		}
	}
	return "{" + strings.Join(parts, ",") + "}"
}

func max64(a, b uint64) uint64 {
	if a > b {
		return a
	}
	return b
}

func min64(a, b uint64) uint64 {
	if a < b {
		return a
	}
	return b
}
