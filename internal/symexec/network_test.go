package symexec

import (
	"testing"
)

// fig2Network builds the paper's Fig. 1/2 scenario:
//
//	client -> firewall_out -> server -> firewall_in -> clientRx
//
// firewall_out passes only UDP and sets fw_tag; server echoes packets
// back with src/dst flipped; firewall_in passes only tagged packets.
func fig2Network(t *testing.T) *Network {
	t.Helper()
	n := NewNetwork()
	client := FuncModel(func(port int, s *State) []Transition {
		return []Transition{{Port: 0, S: s}}
	})
	fwOut := FuncModel(func(port int, s *State) []Transition {
		if !s.Constrain(FieldProto, Single(17)) {
			return nil
		}
		s.Assign(FieldFWTag, Const(1))
		return []Transition{{Port: 0, S: s}}
	})
	server := FuncModel(func(port int, s *State) []Transition {
		if !s.Constrain(FieldProto, Single(17)) {
			return nil
		}
		old := s.Get(FieldDstIP)
		s.Assign(FieldDstIP, s.Get(FieldSrcIP))
		s.Assign(FieldSrcIP, old)
		return []Transition{{Port: 0, S: s}}
	})
	fwIn := FuncModel(func(port int, s *State) []Transition {
		if !s.Constrain(FieldFWTag, Single(1)) {
			return nil
		}
		return []Transition{{Port: 0, S: s}}
	})
	for name, m := range map[string]Model{
		"client": client, "fw_out": fwOut, "server": server, "fw_in": fwIn,
		"client_rx": Forward,
	} {
		if err := n.AddNode(name, m); err != nil {
			t.Fatal(err)
		}
	}
	must := func(err error) {
		if err != nil {
			t.Fatal(err)
		}
	}
	must(n.Connect("client", 0, "fw_out", 0))
	must(n.Connect("fw_out", 0, "server", 0))
	must(n.Connect("server", 0, "fw_in", 0))
	must(n.Connect("fw_in", 0, "client_rx", 0))
	return n
}

func TestFig2EndToEnd(t *testing.T) {
	n := fig2Network(t)
	res, err := n.Run(Injection{Node: "client"})
	if err != nil {
		t.Fatal(err)
	}
	// Exactly one flow reaches the receiving client.
	arrived := res.AtNode["client_rx"]
	if len(arrived) != 1 {
		t.Fatalf("flows at client_rx = %d", len(arrived))
	}
	s := arrived[0]
	// Along the way proto was restricted to UDP.
	if v, ok := s.Values(FieldProto).IsSingle(); !ok || v != 17 {
		t.Errorf("proto at client = %v, want exactly udp", s.Values(FieldProto))
	}
	// The payload was never redefined: Fig. 2's "data will not change
	// en-route" conclusion.
	if s.Binding(FieldPayload).DefHop != -1 {
		t.Error("payload was redefined en-route")
	}
	// The server flipped addresses: dst at client aliases the
	// original source variable.
	if !s.SameVar(FieldDstIP, FieldDstIP) {
		t.Error("sanity")
	}
	// dst now holds the var that src was injected with. We detect
	// aliasing by assigning through a probe on a fresh run.
	if s.Binding(FieldDstIP).DefHop < 0 {
		t.Error("dst should have been redefined by the server")
	}
	// One egress from client_rx port 0 (unwired).
	if len(res.Egress) != 1 || res.Egress[0].Node != "client_rx" {
		t.Errorf("egress = %+v", res.Egress)
	}
	// Path is recorded in order.
	want := []string{"client", "fw_out", "server", "fw_in", "client_rx"}
	path := s.Path()
	if len(path) != len(want) {
		t.Fatalf("path = %v", path)
	}
	for i, h := range path {
		if h.Node != want[i] {
			t.Errorf("path[%d] = %s want %s", i, h.Node, want[i])
		}
	}
}

func TestBranchingSplitsFlows(t *testing.T) {
	n := NewNetwork()
	// A classifier that splits UDP to port 0, everything else to 1.
	split := FuncModel(func(port int, s *State) []Transition {
		udp := s.Clone()
		rest := s
		var out []Transition
		if udp.Constrain(FieldProto, Single(17)) {
			out = append(out, Transition{Port: 0, S: udp})
		}
		if rest.Constrain(FieldProto, Single(17).Complement(8)) {
			out = append(out, Transition{Port: 1, S: rest})
		}
		return out
	})
	if err := n.AddNode("split", split); err != nil {
		t.Fatal(err)
	}
	n.AddNode("udp_sink", Forward)
	n.AddNode("other_sink", Forward)
	n.Connect("split", 0, "udp_sink", 0)
	n.Connect("split", 1, "other_sink", 0)
	res, err := n.Run(Injection{Node: "split"})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.AtNode["udp_sink"]) != 1 || len(res.AtNode["other_sink"]) != 1 {
		t.Fatalf("split did not produce both flows: %v", res.AtNode)
	}
	u := res.AtNode["udp_sink"][0]
	o := res.AtNode["other_sink"][0]
	if v, ok := u.Values(FieldProto).IsSingle(); !ok || v != 17 {
		t.Error("udp branch not udp")
	}
	if o.Values(FieldProto).Contains(17) {
		t.Error("other branch still allows udp")
	}
}

func TestDropRecorded(t *testing.T) {
	n := NewNetwork()
	deny := FuncModel(func(port int, s *State) []Transition { return nil })
	n.AddNode("deny", deny)
	res, err := n.Run(Injection{Node: "deny"})
	if err != nil {
		t.Fatal(err)
	}
	if res.Dropped["deny"] != 1 {
		t.Errorf("dropped = %v", res.Dropped)
	}
	if len(res.Egress) != 0 {
		t.Error("nothing should egress")
	}
}

func TestLoopTruncated(t *testing.T) {
	n := NewNetwork()
	n.AddNode("a", Forward)
	n.AddNode("b", Forward)
	n.Connect("a", 0, "b", 0)
	n.Connect("b", 0, "a", 0)
	res, err := n.Run(Injection{Node: "a", MaxHops: 50})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Truncated {
		t.Error("loop must truncate")
	}
	if res.Steps > 60 {
		t.Errorf("steps = %d, loop not bounded", res.Steps)
	}
}

func TestMaxStatesGuard(t *testing.T) {
	n := NewNetwork()
	// Exponential splitter: 2 outputs both looping back.
	boom := FuncModel(func(port int, s *State) []Transition {
		return []Transition{{Port: 0, S: s.Clone()}, {Port: 1, S: s.Clone()}}
	})
	n.AddNode("boom", boom)
	n.Connect("boom", 0, "boom", 0)
	n.Connect("boom", 1, "boom", 0)
	res, err := n.Run(Injection{Node: "boom", MaxStates: 100, MaxHops: 1000})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Truncated {
		t.Error("state explosion must truncate")
	}
}

func TestNetworkErrors(t *testing.T) {
	n := NewNetwork()
	if err := n.AddNode("a", Forward); err != nil {
		t.Fatal(err)
	}
	if err := n.AddNode("a", Forward); err == nil {
		t.Error("duplicate node accepted")
	}
	if err := n.AddNode("nil", nil); err == nil {
		t.Error("nil model accepted")
	}
	if err := n.Connect("a", 0, "missing", 0); err == nil {
		t.Error("connect to unknown accepted")
	}
	if err := n.Connect("missing", 0, "a", 0); err == nil {
		t.Error("connect from unknown accepted")
	}
	n.AddNode("b", Forward)
	if err := n.Connect("a", 0, "b", 0); err != nil {
		t.Fatal(err)
	}
	if err := n.Connect("a", 0, "b", 0); err == nil {
		t.Error("double wiring accepted")
	}
	if _, err := n.Run(Injection{Node: "missing"}); err == nil {
		t.Error("run from unknown node accepted")
	}
}

func TestArrivalSnapshotIsPreModel(t *testing.T) {
	n := NewNetwork()
	setter := FuncModel(func(port int, s *State) []Transition {
		s.Assign(FieldTTL, Const(9))
		return []Transition{{Port: 0, S: s}}
	})
	n.AddNode("set", setter)
	res, err := n.Run(Injection{Node: "set"})
	if err != nil {
		t.Fatal(err)
	}
	at := res.AtNode["set"][0]
	if _, isConst := at.Get(FieldTTL).IsConst(); isConst {
		t.Error("arrival snapshot already shows model's assignment")
	}
	if len(res.Egress) != 1 {
		t.Fatal("no egress")
	}
	if v, ok := res.Egress[0].S.Get(FieldTTL).IsConst(); !ok || v != 9 {
		t.Error("egress state missing model's assignment")
	}
}

func BenchmarkChainReachability(b *testing.B) {
	// A 100-node chain of constraining models, the shape behind
	// Fig. 10's linear scaling claim.
	n := NewNetwork()
	hop := FuncModel(func(port int, s *State) []Transition {
		if !s.Constrain(FieldProto, Span(0, 200)) {
			return nil
		}
		return []Transition{{Port: 0, S: s}}
	})
	names := make([]string, 100)
	for i := range names {
		names[i] = "n" + string(rune('a'+i%26)) + string(rune('0'+i/26))
		n.AddNode(names[i], hop)
	}
	for i := 0; i+1 < len(names); i++ {
		n.Connect(names[i], 0, names[i+1], 0)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := n.Run(Injection{Node: names[0]}); err != nil {
			b.Fatal(err)
		}
	}
}
