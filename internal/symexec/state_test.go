package symexec

import (
	"strings"
	"testing"
)

func TestNewStateIsUnconstrained(t *testing.T) {
	s := NewState()
	for _, f := range standardFields {
		if _, ok := s.Get(f).IsVar(); !ok {
			t.Errorf("%s should start as a free variable", f)
		}
		if !s.Values(f).Equal(Full(f.Width())) {
			t.Errorf("%s should start unconstrained, got %v", f, s.Values(f))
		}
		if s.Binding(f).DefHop != -1 {
			t.Errorf("%s DefHop should be -1", f)
		}
	}
}

func TestConstrainNarrowsAndFails(t *testing.T) {
	s := NewState()
	if !s.Constrain(FieldProto, Single(17)) {
		t.Fatal("constraining a free var must succeed")
	}
	if v, ok := s.Values(FieldProto).IsSingle(); !ok || v != 17 {
		t.Errorf("proto values = %v", s.Values(FieldProto))
	}
	if s.Constrain(FieldProto, Single(6)) {
		t.Error("contradictory constraint must fail")
	}
}

func TestConstrainConstant(t *testing.T) {
	s := NewState()
	s.Assign(FieldDstPort, Const(80))
	if !s.Constrain(FieldDstPort, Span(0, 1000)) {
		t.Error("80 in [0,1000]")
	}
	if s.Constrain(FieldDstPort, Span(81, 1000)) {
		t.Error("80 not in [81,1000]")
	}
}

func TestAliasingPropagatesConstraints(t *testing.T) {
	// Model the paper's server(): ip_dst := ip_src. Constraining
	// ip_dst afterwards must constrain the shared variable.
	s := NewState()
	s.Assign(FieldDstIP, s.Get(FieldSrcIP))
	if !s.SameVar(FieldSrcIP, FieldDstIP) {
		t.Fatal("dst should alias src")
	}
	if !s.Constrain(FieldDstIP, Single(42)) {
		t.Fatal("constrain aliased")
	}
	if v, ok := s.Values(FieldSrcIP).IsSingle(); !ok || v != 42 {
		t.Errorf("src values = %v, aliasing broken", s.Values(FieldSrcIP))
	}
}

func TestCloneIndependence(t *testing.T) {
	s := NewState()
	s.PushHop("a", 0)
	c := s.Clone()
	c.Assign(FieldTTL, Const(1))
	c.PushHop("b", 0)
	if _, isConst := s.Get(FieldTTL).IsConst(); isConst {
		t.Error("clone assignment leaked to original")
	}
	if s.PathLen() != 1 || c.PathLen() != 2 {
		t.Errorf("paths: %v vs %v", s.Path(), c.Path())
	}
	// Constraints are independent too.
	c.Constrain(FieldProto, Single(6))
	if s.Values(FieldProto).Equal(Single(6)) {
		t.Error("clone constraint leaked")
	}
}

func TestCloneSharesVarAllocator(t *testing.T) {
	s := NewState()
	c := s.Clone()
	e1 := s.AssignFresh(FieldPayload)
	e2 := c.AssignFresh(FieldPayload)
	v1, _ := e1.IsVar()
	v2, _ := e2.IsVar()
	if v1 == v2 {
		t.Error("fresh vars in clones must not collide")
	}
}

func TestDefHopTracking(t *testing.T) {
	s := NewState()
	s.PushHop("client", 0)
	s.PushHop("fw", 0)
	s.Assign(FieldFWTag, Const(1))
	if got := s.Binding(FieldFWTag).DefHop; got != 1 {
		t.Errorf("DefHop = %d want 1", got)
	}
	s.PushHop("server", 0)
	// fw_tag untouched since hop 1: invariant across fw->server.
	if s.Binding(FieldFWTag).DefHop > 1 {
		t.Error("DefHop moved without assignment")
	}
}

func TestHopIndex(t *testing.T) {
	s := NewState()
	s.PushHop("a", 0)
	s.PushHop("b", 1)
	s.PushHop("a", 2)
	if got := s.HopIndex("a", -1); got != 2 {
		t.Errorf("last a = %d", got)
	}
	if got := s.HopIndex("a", 0); got != 0 {
		t.Errorf("a:0 = %d", got)
	}
	if got := s.HopIndex("zz", -1); got != -1 {
		t.Errorf("missing = %d", got)
	}
}

func TestLazySyntheticFields(t *testing.T) {
	// Synthetic state fields default to Const(0): "no middlebox state
	// yet". A free variable here would let untagged flows satisfy
	// stateful checks spuriously.
	s := NewState()
	e := s.Get(Field("conntrack"))
	if v, ok := e.IsConst(); !ok || v != 0 {
		t.Errorf("synthetic field default = %v, want Const(0)", e)
	}
	if e != s.Get(Field("conntrack")) {
		t.Error("Get not stable")
	}
	// Constraining it to a nonzero value must fail.
	if s.Constrain(Field("conntrack"), Single(1)) {
		t.Error("zero-state field satisfied nonzero constraint")
	}
}

func TestStateString(t *testing.T) {
	s := NewState()
	s.Assign(FieldProto, Const(17))
	s.PushHop("fw", 0)
	str := s.String()
	if !strings.Contains(str, "proto=17") || !strings.Contains(str, "fw:0") {
		t.Errorf("String = %s", str)
	}
}

func TestValuesAfterAssignConst(t *testing.T) {
	s := NewState()
	s.Assign(FieldSrcIP, Const(0x0a000001))
	if v, ok := s.Values(FieldSrcIP).IsSingle(); !ok || v != 0x0a000001 {
		t.Errorf("Values = %v", s.Values(FieldSrcIP))
	}
}
