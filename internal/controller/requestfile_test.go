package controller

import (
	"strings"
	"testing"

	"github.com/in-net/innet/internal/security"
)

const fig4RequestFile = `
# The paper's Fig. 4 request: batch UDP notifications for a mobile.
module: Batcher
tenant: alice
trust: client
whitelist: 192.0.2.1, 192.0.2.2

config:
  FromNetfront() ->
  IPFilter(allow udp port 1500) ->
  IPRewriter(pattern - - 10.1.15.133 - 0 0)
  -> TimedUnqueue(120,100)
  -> dst::ToNetfront()

requirements:
  reach from internet udp
  -> Batcher:dst:0 dst 10.1.15.133
  -> client dst port 1500
  const proto && dst port && payload
`

func TestParseRequestFileFig4(t *testing.T) {
	req, err := ParseRequestFile(fig4RequestFile)
	if err != nil {
		t.Fatal(err)
	}
	if req.ModuleName != "Batcher" || req.Tenant != "alice" {
		t.Errorf("header: %+v", req)
	}
	if req.Trust != security.Client {
		t.Errorf("trust = %v", req.Trust)
	}
	if len(req.Whitelist) != 2 || req.Whitelist[1] != "192.0.2.2" {
		t.Errorf("whitelist = %v", req.Whitelist)
	}
	if !strings.Contains(req.Config, "TimedUnqueue(120,100)") {
		t.Errorf("config:\n%s", req.Config)
	}
	if !strings.Contains(req.Requirements, "const proto && dst port && payload") {
		t.Errorf("requirements:\n%s", req.Requirements)
	}
}

func TestParseRequestFileDeploysEndToEnd(t *testing.T) {
	c := newController(t)
	req, err := ParseRequestFile(fig4RequestFile)
	if err != nil {
		t.Fatal(err)
	}
	dep, err := c.Deploy(req)
	if err != nil {
		t.Fatal(err)
	}
	if dep.Platform != "Platform3" {
		t.Errorf("platform = %s", dep.Platform)
	}
}

func TestParseRequestFileStock(t *testing.T) {
	req, err := ParseRequestFile(`
module: dns
trust: third-party
stock: geo-dns
`)
	if err != nil {
		t.Fatal(err)
	}
	if req.Stock != "geo-dns" || req.Config != "" {
		t.Errorf("req = %+v", req)
	}
}

func TestParseRequestFileTransparent(t *testing.T) {
	req, err := ParseRequestFile(`
module: rt
trust: operator
transparent: true
config:
  in :: FromNetfront();
  out :: ToNetfront();
  in -> out;
`)
	if err != nil {
		t.Fatal(err)
	}
	if !req.Transparent || req.Trust != security.Operator {
		t.Errorf("req = %+v", req)
	}
}

func TestParseRequestFileErrors(t *testing.T) {
	cases := []struct {
		name, src string
	}{
		{"missing module", "tenant: x\nconfig:\n d::Discard();"},
		{"no config or stock", "module: m"},
		{"both config and stock", "module: m\nstock: geo-dns\nconfig:\n x"},
		{"bad trust", "module: m\ntrust: root\nstock: geo-dns"},
		{"bad transparent", "module: m\ntransparent: maybe\nstock: geo-dns"},
		{"unknown key", "module: m\ncolour: blue\nstock: geo-dns"},
		{"bare line", "module: m\njustaword\nstock: geo-dns"},
	}
	for _, c := range cases {
		if _, err := ParseRequestFile(c.src); err == nil {
			t.Errorf("%s: accepted", c.name)
		}
	}
}
