package controller

import (
	"fmt"
	"strings"
	"sync"
	"testing"

	"github.com/in-net/innet/internal/security"
	"github.com/in-net/innet/internal/topology"
)

// TestConcurrentQueries exercises §4.3's controller-parallelization
// claim: many reachability queries run simultaneously against the
// same controller (run with -race to validate the locking).
func TestConcurrentQueries(t *testing.T) {
	c := newController(t)
	if _, err := c.Deploy(batcherRequest()); err != nil {
		t.Fatal(err)
	}
	queries := []string{
		"reach from client udp -> internet",
		"reach from internet tcp src port 80 -> HTTPOptimizer -> client",
		"reach from internet udp -> Batcher:dst:0 -> client",
	}
	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < 4; j++ {
				res, err := c.Query(queries[(i+j)%len(queries)])
				if err != nil {
					errs <- err
					return
				}
				if !res.Satisfied {
					errs <- fmt.Errorf("query unsatisfied: %s", res.Reason)
					return
				}
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

// TestConcurrentDeploys checks that racing deployments serialize
// correctly: unique IDs, unique addresses, consistent bookkeeping.
func TestConcurrentDeploys(t *testing.T) {
	c := newController(t)
	const n = 12
	var wg sync.WaitGroup
	deps := make(chan *Deployment, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			name := fmt.Sprintf("FW%d", i)
			dep, err := c.Deploy(Request{
				Tenant:     "tenant",
				ModuleName: name,
				Trust:      security.ThirdParty,
				Whitelist:  []string{"192.0.2.1"},
				Config: `
in :: FromNetfront();
f :: IPFilter(allow udp, deny all);
fwd :: SetIPDst(192.0.2.1);
out :: ToNetfront();
in -> f -> fwd -> out;
`,
				Requirements: strings.ReplaceAll(
					"reach from internet udp -> NAME:out:0", "NAME", name),
			})
			if err != nil {
				t.Errorf("deploy %d: %v", i, err)
				return
			}
			deps <- dep
		}(i)
	}
	wg.Wait()
	close(deps)
	ids := map[string]bool{}
	addrs := map[uint32]bool{}
	count := 0
	for d := range deps {
		count++
		if ids[d.ID] {
			t.Errorf("duplicate id %s", d.ID)
		}
		if addrs[d.Addr] {
			t.Errorf("duplicate address %d", d.Addr)
		}
		ids[d.ID] = true
		addrs[d.Addr] = true
	}
	if count != n {
		t.Errorf("deployed %d of %d", count, n)
	}
	if got := len(c.Deployments()); got != n {
		t.Errorf("Deployments() = %d", got)
	}
}

func BenchmarkParallelQueries(b *testing.B) {
	topo, err := topology.PaperFig3()
	if err != nil {
		b.Fatal(err)
	}
	c, err := New(topo, "")
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			res, err := c.Query("reach from client udp -> internet")
			if err != nil || !res.Satisfied {
				b.Fatalf("query: %v %v", err, res)
			}
		}
	})
}
