// Package controller implements the In-Net controller (paper §4.3):
// it receives client requests (a Click configuration or a stock
// module, plus requirements), statically verifies them against the
// operator's topology, policy and the security rules, picks a
// platform, assigns the module an address, and — when static checking
// cannot prove safety — transparently wraps the module in a
// ChangeEnforcer sandbox.
package controller

import (
	"errors"
	"fmt"
	"runtime"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"github.com/in-net/innet/internal/click"
	"github.com/in-net/innet/internal/clicklang"
	"github.com/in-net/innet/internal/journal"
	"github.com/in-net/innet/internal/packet"
	"github.com/in-net/innet/internal/pipeline"
	"github.com/in-net/innet/internal/platform"
	"github.com/in-net/innet/internal/policy"
	"github.com/in-net/innet/internal/security"
	"github.com/in-net/innet/internal/symexec"
	"github.com/in-net/innet/internal/telemetry"
	"github.com/in-net/innet/internal/topology"
)

// Request is a client's processing-module deployment request
// (paper §4.1, Fig. 4): a configuration plus requirements.
type Request struct {
	// Tenant identifies the requesting customer.
	Tenant string
	// ModuleName is the client-chosen module name; requirements
	// reference elements as "<ModuleName>:<element>:<port>".
	ModuleName string
	// Config is Click source. Empty if Stock is set.
	Config string
	// Stock names a platform-provided stock module (§4.1): one of
	// StockModules. Empty if Config is set.
	Stock string
	// Requirements is reach-statement text (may be empty).
	Requirements string
	// Trust is the requester's class.
	Trust security.TrustClass
	// Whitelist lists destination addresses the tenant owns
	// (explicit authorization, §2.1).
	Whitelist []string
	// Transparent requests interposition on traffic not addressed to
	// the module; operator-only.
	Transparent bool
	// TraceEvery is the module's path-trace sampling rate (one flow in
	// N); 0 inherits the platform default, negative disables tracing
	// for this module.
	TraceEvery int
}

// Stock module catalog (§4.1: "a reverse-HTTP proxy appliance, an
// explicit proxy, a DNS server that uses geolocation, and an
// arbitrary x86 VM").
const (
	StockReverseProxy  = "reverse-proxy"
	StockExplicitProxy = "explicit-proxy"
	StockGeoDNS        = "geo-dns"
	StockX86VM         = "x86-vm"
)

// StockModules maps stock module names to their Click sources; the
// x86 VM maps to the empty string (opaque to analysis).
var StockModules = map[string]string{
	StockReverseProxy: `
in :: FromNetfront();
f :: IPFilter(allow tcp dst port 80);
mir :: IPMirror();
out :: ToNetfront();
in -> f -> mir -> out;
`,
	StockExplicitProxy: `
in :: FromNetfront();
f :: IPFilter(allow tcp);
mir :: IPMirror();
out :: ToNetfront();
in -> f -> mir -> out;
`,
	StockGeoDNS: `
in :: FromNetfront();
f :: IPFilter(allow udp dst port 53);
mir :: IPMirror();
out :: ToNetfront();
in -> f -> mir -> out;
`,
	StockX86VM: "",
}

// Timings breaks down the controller's handling latency, mirroring
// the split reported in §6.1 (compilation vs. analysis).
type Timings struct {
	// Compile covers parsing and building the network snapshots.
	Compile time.Duration
	// Check covers symbolic execution (requirements, policy,
	// security).
	Check time.Duration
}

// DeploymentStatus is a deployment's lifecycle state (§4.3: the
// operator "must handle failures" of platforms and modules).
type DeploymentStatus int32

// Deployment lifecycle states.
const (
	// StatusActive: placed, verified, serving.
	StatusActive DeploymentStatus = iota
	// StatusDegraded: the hosting platform is down; traffic is being
	// dropped or buffered while the controller arranges failover.
	StatusDegraded
	// StatusMigrating: failover in progress — the module is being
	// re-verified and re-placed on an alternate platform.
	StatusMigrating
	// StatusFailed: no alternate platform passed the policy and
	// security checks; the module is out of service.
	StatusFailed
)

func (s DeploymentStatus) String() string {
	switch s {
	case StatusActive:
		return "active"
	case StatusDegraded:
		return "degraded"
	case StatusMigrating:
		return "migrating"
	case StatusFailed:
		return "failed"
	default:
		return "unknown"
	}
}

// Deployment is a successfully placed processing module.
type Deployment struct {
	ID         string
	Tenant     string
	ModuleName string
	Platform   string
	// Addr is the address clients use to reach the module.
	Addr uint32
	// Sandboxed reports whether a ChangeEnforcer was injected.
	Sandboxed bool
	// Security is the security-check report.
	Security *security.Report
	// Config is the (possibly sandbox-wrapped) deployed source.
	Config string
	// Timings is the handling-latency breakdown.
	Timings Timings
	// PipelineCompiled reports whether the deployed config flattens
	// into the compiled run-to-completion dataplane; when it does not,
	// PipelineFallback carries the compiler's reason and the platform
	// serves the module on the graph walk.
	PipelineCompiled bool
	PipelineFallback string

	// status is atomic so HTTP handlers may read it while a failover
	// mutates it. All other fields are immutable after placement:
	// failover replaces the map entry with a fresh Deployment under
	// the same ID rather than mutating this one.
	status atomic.Int32
	// req is the original request, retained so failover can re-run
	// the full verification pipeline on an alternate platform.
	req    Request
	module topology.HostedModule
}

// Status returns the deployment's lifecycle state.
func (d *Deployment) Status() DeploymentStatus {
	return DeploymentStatus(d.status.Load())
}

func (d *Deployment) setStatus(s DeploymentStatus) { d.status.Store(int32(s)) }

// statefulClasses lists element classes that hold cross-packet state:
// the platform must not consolidate such modules and uses
// suspend/resume instead of destroy/boot for them (§5).
var statefulClasses = map[string]bool{
	"StatefulFirewall": true,
	"IPRewriter":       true,
	"FlowMeter":        true,
	"Queue":            true,
	"TimedUnqueue":     true,
	"RatedUnqueue":     true,
	"ChangeEnforcer":   true,
}

// Stateful reports whether the deployed configuration holds
// cross-packet state.
func (d *Deployment) Stateful() bool {
	cfg, err := clicklang.Parse(d.Config)
	if err != nil {
		return true // be conservative
	}
	for _, decl := range cfg.Decls {
		if statefulClasses[decl.Class] {
			return true
		}
	}
	return false
}

// classifyPipeline records whether the deployed source compiles into
// the flattened pipeline, and if not, why (the admission-time
// equivalent of the platform's lazy compile, so operators see the
// dataplane mode before the first packet).
func (d *Deployment) classifyPipeline() {
	if err := pipeline.Check(d.Config); err != nil {
		d.PipelineCompiled = false
		d.PipelineFallback = err.Error()
		return
	}
	d.PipelineCompiled = true
	d.PipelineFallback = ""
}

// Dataplane names the dataplane mode this deployment runs on.
func (d *Deployment) Dataplane() string {
	if d.PipelineCompiled {
		return "pipeline"
	}
	return "graph-walk"
}

// PlatformSpec converts the deployment into the module spec the
// hosting platform registers — the integration point between the
// control plane and the (simulated) dataplane.
func (d *Deployment) PlatformSpec() platform.ModuleSpec {
	return platform.ModuleSpec{
		Addr:       d.Addr,
		Config:     d.Config,
		Kind:       platform.ClickOS,
		Stateful:   d.Stateful(),
		TraceEvery: d.req.TraceEvery,
	}
}

// Admission-budget defaults: a pathological tenant configuration must
// not wedge Deploy, so both the symbolic step count and the wall
// clock are bounded and exhaustion is a *RejectionError*, not a hang.
const (
	// DefaultAdmissionSteps bounds symbolic-execution steps per
	// individual check (security analysis; each requirement/policy
	// check) during admission.
	DefaultAdmissionSteps = 500_000
	// DefaultAdmissionTimeout bounds one placement attempt's total
	// wall-clock time across all platforms.
	DefaultAdmissionTimeout = 30 * time.Second
)

// Options are operator-wide policy knobs.
type Options struct {
	// BanConnectionlessReplies enables the §7 amplification-attack
	// mitigation: third-party modules whose reply-to-sender traffic
	// can be connectionless are sandboxed instead of trusted.
	BanConnectionlessReplies bool
	// AdmissionSteps bounds symbolic-execution steps per admission
	// check (0 = DefaultAdmissionSteps, negative = unlimited).
	AdmissionSteps int
	// AdmissionTimeout bounds one placement attempt's wall-clock
	// time (0 = DefaultAdmissionTimeout, negative = unlimited).
	AdmissionTimeout time.Duration
	// AdmissionCache bounds the admission verdict cache (entries; 0 =
	// DefaultAdmissionCache, negative = caching disabled). See
	// cache.go for the key discipline.
	AdmissionCache int
	// AdmissionWorkers fans symbolic path exploration across a
	// bounded work-stealing pool (0 = GOMAXPROCS, negative = 1).
	// Result merging is deterministic, so reports are byte-identical
	// to sequential runs at any worker count (the parallel
	// differential battery enforces this).
	AdmissionWorkers int
	// ElementMemo bounds the per-element symbolic-execution memo
	// (entries; 0 = symexec.DefaultMemoEntries, negative = disabled).
	// Structurally shared sub-chains across tenants verify once.
	ElementMemo int
	// PipelineWorkers is the run-to-completion worker count dataplanes
	// should use for compiled modules (0 = single worker). The
	// controller only records and reports it; the hosting dataplane
	// (innetd's simulator, innet-bench) sizes its engines from it.
	PipelineWorkers int
	// WholesaleInvalidation reverts placement/query cache entries to
	// the legacy epoch-tagged discipline where ANY topology mutation
	// (deploy, kill, outage) invalidates every placement-dependent
	// entry. Default (false) is epoch-delta invalidation: entries
	// record which platforms/modules the check depended on and
	// survive unrelated mutations. Kept for the incremental
	// equivalence property test and benchmark comparisons.
	WholesaleInvalidation bool
}

// workers resolves AdmissionWorkers to an effective pool size.
func (o Options) workers() int {
	if o.AdmissionWorkers == 0 {
		return runtime.GOMAXPROCS(0)
	}
	if o.AdmissionWorkers < 0 {
		return 1
	}
	return o.AdmissionWorkers
}

// admissionBudget resolves the options into a per-check step budget
// and an absolute deadline for a placement attempt starting now.
func (o Options) admissionBudget() (steps int, deadline time.Time) {
	steps = o.AdmissionSteps
	if steps == 0 {
		steps = DefaultAdmissionSteps
	}
	if steps < 0 {
		steps = 0 // symexec default only
	}
	d := o.AdmissionTimeout
	if d == 0 {
		d = DefaultAdmissionTimeout
	}
	if d > 0 {
		deadline = time.Now().Add(d)
	}
	return steps, deadline
}

// Controller is the operator's control plane.
type Controller struct {
	mu   sync.Mutex
	opts Options
	topo *topology.Topology
	// operatorPolicy must hold before and after every placement.
	operatorPolicy []*policy.Requirement
	deployments    map[string]*Deployment
	nextID         int
	// platformDown tracks platform health; down platforms are skipped
	// by placement and trigger failover of their modules.
	platformDown map[string]bool
	// journal receives one record per state transition (nil = no
	// persistence); journalErr remembers the first best-effort
	// append that failed.
	journal    Journal
	journalErr error
	// role is the replication role; RoleStandby rejects mutations
	// with ErrNotLeader (see replication.go).
	role Role
	// cache memoizes symbolic-execution verdicts (nil = disabled);
	// epoch content-addresses the deployment set + platform health
	// for placement-dependent entries, recomputed when epochDirty.
	cache      *symexec.Cache
	epoch      string
	epochDirty bool
	// memo short-circuits repeated per-element symbolic executions
	// across admissions (nil = disabled); digests is the dependency
	// token table for epoch-delta invalidation, recomputed when
	// digestsDirty (see cache.go).
	memo         *symexec.Memo
	digests      map[string]string
	digestsDirty bool
	// tracer/tel are the attached telemetry sinks (nil = dark); span
	// is the open admission span — admissions are serialized under mu,
	// so at most one span is live at a time (see telemetry.go).
	tracer *telemetry.Tracer
	tel    *admissionTelemetry
	span   *telemetry.Span
	// rec, when set, receives flight-recorder events for platform
	// health flips, failovers and cache invalidations.
	rec *telemetry.Recorder

	// Placed, Rejections count controller decisions.
	Placed     int
	Rejections int
	// Migrations and FailedMigrations count failover outcomes.
	Migrations       int
	FailedMigrations int
}

// New builds a controller for the given operator topology and policy
// (reach statements that must always hold; may be empty).
func New(topo *topology.Topology, operatorPolicy string) (*Controller, error) {
	return NewWithOptions(topo, operatorPolicy, Options{})
}

// NewWithOptions builds a controller with operator policy knobs.
func NewWithOptions(topo *topology.Topology, operatorPolicy string, opts Options) (*Controller, error) {
	cacheSize := opts.AdmissionCache
	if cacheSize == 0 {
		cacheSize = DefaultAdmissionCache
	}
	memoSize := opts.ElementMemo
	if memoSize == 0 {
		memoSize = symexec.DefaultMemoEntries
	}
	c := &Controller{
		opts:         opts,
		topo:         topo,
		deployments:  make(map[string]*Deployment),
		platformDown: make(map[string]bool),
		cache:        symexec.NewCache(cacheSize), // nil (disabled) when cacheSize < 0
		memo:         symexec.NewMemo(memoSize),   // nil (disabled) when memoSize < 0
		epochDirty:   true,
		digestsDirty: true,
	}
	if strings.TrimSpace(operatorPolicy) != "" {
		reqs, err := policy.ParseAll(operatorPolicy)
		if err != nil {
			return nil, fmt.Errorf("controller: operator policy: %v", err)
		}
		c.operatorPolicy = reqs
	}
	// The policy must hold on the pristine network.
	net, nm, err := topo.Compile(c.hostedLocked(nil))
	if err != nil {
		return nil, fmt.Errorf("controller: %v", err)
	}
	env := &policy.CheckEnv{Net: net, Map: nm, ClientNet: topo.ClientNet,
		Workers: opts.workers(), Memo: c.memo}
	for _, r := range c.operatorPolicy {
		res, err := r.Check(env)
		if err != nil {
			return nil, fmt.Errorf("controller: operator policy %q: %v", r, err)
		}
		if !res.Satisfied {
			return nil, fmt.Errorf("controller: operator policy %q does not hold on the base network: %s", r, res.Reason)
		}
	}
	return c, nil
}

// RejectionError explains why a request was not deployed.
type RejectionError struct {
	Reason string
}

func (e *RejectionError) Error() string { return "controller: request rejected: " + e.Reason }

// Deploy handles one client request end to end. On success the module
// is recorded as hosted and its deployment descriptor returned; a
// *RejectionError explains refusals.
func (c *Controller) Deploy(req Request) (*Deployment, error) {
	d, _, err := c.deploy(req, false)
	return d, err
}

// deploy is the shared core of Deploy and DeployIdempotent: when
// idempotent, a request byte-identical to an existing deployment
// returns that deployment (reused=true) instead of a duplicate-module
// rejection.
func (c *Controller) deploy(req Request, idempotent bool) (*Deployment, bool, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if err := c.leaderOnlyLocked(); err != nil {
		return nil, false, err
	}

	start := time.Now()
	c.beginSpanLocked("deploy", req.ModuleName)
	defer func() {
		if c.tel != nil {
			c.tel.total.Observe(time.Since(start).Seconds())
		}
	}()

	if req.ModuleName == "" {
		c.verdictLocked(false)
		c.endSpanLocked("rejected")
		return nil, false, &RejectionError{Reason: "missing module name"}
	}
	for _, d := range c.deployments {
		if d.Tenant == req.Tenant && d.ModuleName == req.ModuleName {
			if idempotent && sameRequest(d.req, req) {
				c.endSpanLocked("reused")
				return d, true, nil
			}
			c.verdictLocked(false)
			c.endSpanLocked("rejected")
			return nil, false, &RejectionError{Reason: fmt.Sprintf("module %q already deployed", req.ModuleName)}
		}
	}
	dep, err := c.placeLocked(req)
	if err != nil {
		c.Rejections++
		jstart := time.Now()
		c.journalBestEffortLocked(journal.Record{
			Type: journal.EvReject, ID: req.ModuleName, Reason: err.Error(),
		})
		c.stageLocked(StageJournalAppend, jstart, "reject record")
		c.verdictLocked(false)
		c.endSpanLocked("rejected")
		return nil, false, err
	}
	c.span.SetRef(dep.ID)
	// Write-ahead: the admission is durable (and, under replication,
	// acknowledged by the standbys) before it is visible.
	jstart := time.Now()
	jerr := c.appendSyncLocked(journal.Record{Type: journal.EvAdmit, Dep: depRecord(dep)})
	c.stageLocked(StageJournalAppend, jstart, "admit record")
	if jerr != nil {
		c.endSpanLocked("error")
		return nil, false, fmt.Errorf("controller: journal admit: %w", jerr)
	}
	c.deployments[dep.ID] = dep
	c.bumpEpochLocked()
	c.Placed++
	c.verdictLocked(true)
	c.endSpanLocked("admitted")
	return dep, false, nil
}

// placeLocked runs the full verification-and-placement pipeline for a
// request over every healthy platform, returning the placement
// without inserting it into the deployment set. It is the shared core
// of Deploy and Failover.
func (c *Controller) placeLocked(req Request) (*Deployment, error) {
	canonStart := time.Now()
	src, isVM, err := resolveConfig(req)
	if err != nil {
		return nil, err
	}
	var whitelist []uint32
	for _, w := range req.Whitelist {
		ip, err := packet.ParseIP(w)
		if err != nil {
			return nil, &RejectionError{Reason: fmt.Sprintf("bad whitelist address %q", w)}
		}
		whitelist = append(whitelist, ip)
	}
	var reqs []*policy.Requirement
	if strings.TrimSpace(req.Requirements) != "" {
		reqs, err = policy.ParseAll(req.Requirements)
		if err != nil {
			return nil, &RejectionError{Reason: fmt.Sprintf("bad requirements: %v", err)}
		}
	}
	c.stageLocked(StageCanonicalize, canonStart, "")

	var timings Timings
	// Iterate over the platforms (§4.3: "it iterates through all its
	// available platforms, pretends it has instantiated the client
	// processing, checking all operator and client requirements").
	// The whole attempt shares one admission deadline so a config
	// that is slow to analyze cannot multiply its cost per platform.
	steps, deadline := c.opts.admissionBudget()
	var lastReason string
	for _, pl := range c.topo.Platforms() {
		if c.platformDown[pl] {
			lastReason = fmt.Sprintf("platform %s is down", pl)
			continue
		}
		dep, reason, err := c.tryPlatform(req, src, isVM, whitelist, reqs, pl, &timings, steps, deadline)
		if err != nil {
			return nil, err
		}
		if dep != nil {
			dep.Timings = timings
			return dep, nil
		}
		lastReason = reason
	}
	if lastReason == "" {
		lastReason = "no platform available"
	}
	return nil, &RejectionError{Reason: lastReason}
}

// budgetRejection converts a symexec budget exhaustion into the
// client-visible rejection the admission pipeline must produce
// instead of hanging; other errors pass through unchanged.
func budgetRejection(err error) error {
	if errors.Is(err, symexec.ErrBudget) {
		return &RejectionError{Reason: fmt.Sprintf("admission budget exceeded (configuration too expensive to verify): %v", err)}
	}
	return err
}

// tryPlatform attempts a tentative placement on one platform.
// It returns (nil, reason, nil) when this platform does not fit.
func (c *Controller) tryPlatform(req Request, src string, isVM bool, whitelist []uint32, reqs []*policy.Requirement, platformName string, timings *Timings, steps int, deadline time.Time) (*Deployment, string, error) {
	addr, ok := c.allocAddrLocked(platformName)
	if !ok {
		return nil, fmt.Sprintf("platform %s address pool exhausted", platformName), nil
	}
	// The module's address is only known now: substitute the
	// $MODULE_IP placeholder so configurations can refer to their own
	// assigned address (e.g. a tunnel's SNAT stage).
	src = strings.ReplaceAll(src, "$MODULE_IP", packet.IPString(addr))

	// Security check first: its verdict (sandbox) can change the
	// deployed configuration.
	checkStart := time.Now()
	var mod *click.Router
	deploySrc := src
	if !isVM {
		var err error
		mod, err = buildConfig(src)
		if err != nil {
			return nil, "", &RejectionError{Reason: fmt.Sprintf("bad configuration: %v", err)}
		}
	}
	rep, err := c.checkedSecurity(security.Input{
		ModuleID:                 req.ModuleName,
		Module:                   mod,
		Addr:                     addr,
		Trust:                    req.Trust,
		Whitelist:                whitelist,
		Transparent:              req.Transparent,
		BanConnectionlessReplies: c.opts.BanConnectionlessReplies,
		MaxSteps:                 steps,
		Deadline:                 deadline,
		Workers:                  c.opts.workers(),
		Memo:                     c.memo,
	}, src)
	if err != nil {
		return nil, "", budgetRejection(err)
	}
	timings.Check += time.Since(checkStart)
	if rep.Verdict == security.Rejected {
		return nil, "", &RejectionError{Reason: "security: " + strings.Join(rep.Reasons, "; ")}
	}
	sandboxed := rep.Verdict == security.NeedsSandbox
	if sandboxed && !isVM {
		wrapped, err := SandboxConfig(src, whitelist)
		if err != nil {
			return nil, "", &RejectionError{Reason: fmt.Sprintf("cannot sandbox: %v", err)}
		}
		deploySrc = wrapped
	}

	// Build the tentative module (x86 VMs are modeled as an opaque
	// mirror responder wrapped by a separate-VM enforcer).
	compileStart := time.Now()
	buildSrc := deploySrc
	if isVM {
		var err error
		buildSrc, err = SandboxConfig(StockModules[StockReverseProxy], whitelist)
		if err != nil {
			return nil, "", err
		}
		deploySrc = buildSrc
	}
	tentative, err := buildConfig(buildSrc)
	if err != nil {
		return nil, "", &RejectionError{Reason: fmt.Sprintf("bad configuration: %v", err)}
	}
	hosted := topology.HostedModule{
		ID: req.ModuleName, Platform: platformName, Addr: addr, Router: tentative,
	}
	all := c.hostedLocked(&hosted)
	net, nm, err := c.topo.Compile(all)
	if err != nil {
		return nil, fmt.Sprintf("platform %s: %v", platformName, err), nil
	}
	timings.Compile += time.Since(compileStart)
	c.stageLocked(StagePlacement, compileStart, "platform "+platformName)

	// Client requirements and operator policy must all hold.
	checkStart = time.Now()
	env := &policy.CheckEnv{
		Net: net, Map: nm, ClientNet: c.topo.ClientNet,
		MaxSteps: steps, Deadline: deadline,
		Workers: c.opts.workers(), Memo: c.memo,
	}
	var pkey string
	if c.cache != nil {
		pkey = placementKey(platformName, addr, deploySrc, req.Requirements, steps)
	}
	reason, cerr := c.checkPlacementLocked(platformName, reqs, env, pkey)
	timings.Check += time.Since(checkStart)
	if cerr != nil {
		// Budget exhaustion aborts the whole deployment: the config
		// would burn the same budget on every platform.
		return nil, "", budgetRejection(cerr)
	}
	if reason != "" {
		return nil, reason, nil
	}

	c.nextID++
	dep := &Deployment{
		ID:         fmt.Sprintf("pm-%d", c.nextID),
		Tenant:     req.Tenant,
		ModuleName: req.ModuleName,
		Platform:   platformName,
		Addr:       addr,
		Sandboxed:  sandboxed || isVM,
		Security:   rep,
		Config:     deploySrc,
		req:        req,
		module:     hosted,
	}
	dep.classifyPipeline()
	return dep, "", nil
}

// checkPlacementLocked verifies the client requirements and operator
// policy against env, a compiled network snapshot that includes the
// tentative placement on platformName. It is shared by tryPlatform
// and recoverPlaceLocked so every re-placement path — Deploy,
// Failover, RetryFailed and restart recovery — enforces the same
// placement-dependent checks. A non-empty reason means the placement
// does not fit on this platform (the caller moves to the next one);
// an error means the symbolic-execution budget is exhausted, which no
// platform can cure.
//
// key, when non-empty, memoizes the outcome in the admission cache:
// the reason string (including "": fits) is a pure function of the
// compiled snapshot and the requirement texts. In epoch-delta mode
// (the default) the entry records the dependency tokens the checks
// actually touched — the platforms whose module sets the symbolic
// runs visited and the module names the requirements referenced — and
// stays hot across unrelated topology mutations; under
// Options.WholesaleInvalidation it is epoch-tagged instead. The
// tentative module itself needs no token: it is part of the cache key
// (placementKey hashes its deployed source). Budget errors are never
// cached.
func (c *Controller) checkPlacementLocked(platformName string, reqs []*policy.Requirement, env *policy.CheckEnv, key string) (string, error) {
	useCache := c.cache != nil && key != ""
	delta := useCache && !c.opts.WholesaleInvalidation
	if useCache {
		lstart := time.Now()
		var v any
		var ok bool
		if delta {
			cur := c.digestsLocked()
			v, ok = c.cache.GetValidated(key, func(deps map[string]string) bool {
				return depsValid(deps, cur)
			})
		} else {
			v, ok = c.cache.Get(key, c.epochLocked())
		}
		if ok {
			c.stageLocked(StageCacheLookup, lstart, "placement: hit")
			return v.(string), nil
		}
		c.stageLocked(StageCacheLookup, lstart, "placement: miss")
	}
	if delta {
		env.Visited = make(map[string]bool)
		env.RefNames = make(map[string]bool)
	}
	pstart := time.Now()
	reason, err := c.runPlacementChecks(platformName, reqs, env)
	c.stageLocked(StagePolicyCheck, pstart, policyDetail(platformName, reason, err))
	if err != nil {
		return reason, err
	}
	if useCache {
		if delta {
			c.cache.PutDeps(key, c.depsFor(env, c.digestsLocked()), reason)
		} else {
			c.cache.Put(key, c.epochLocked(), reason)
		}
	}
	return reason, nil
}

// runPlacementChecks is the uncached core of checkPlacementLocked.
func (c *Controller) runPlacementChecks(platformName string, reqs []*policy.Requirement, env *policy.CheckEnv) (string, error) {
	for _, r := range reqs {
		res, err := r.Check(env)
		if err != nil {
			if errors.Is(err, symexec.ErrBudget) {
				return "", err
			}
			return fmt.Sprintf("platform %s: requirement %q: %v", platformName, r, err), nil
		}
		if !res.Satisfied {
			return fmt.Sprintf("platform %s: requirement %q: %s", platformName, r, res.Reason), nil
		}
	}
	for _, r := range c.operatorPolicy {
		res, err := r.Check(env)
		if err != nil {
			if errors.Is(err, symexec.ErrBudget) {
				return "", err
			}
			return fmt.Sprintf("platform %s: operator policy %q: %v", platformName, r, err), nil
		}
		if !res.Satisfied {
			return fmt.Sprintf("platform %s: operator policy %q violated: %s", platformName, r, res.Reason), nil
		}
	}
	return "", nil
}

// MarkPlatformDown records a platform outage: placement skips the
// platform and every deployment hosted there turns Degraded. The
// affected deployments are returned (sorted by ID); call Failover to
// migrate them.
func (c *Controller) MarkPlatformDown(name string) []*Deployment {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.leaderOnlyLocked() != nil {
		// A standby learns platform health through replicated records.
		return nil
	}
	c.platformDown[name] = true
	c.recordLocked("platform-down", "", name)
	c.bumpEpochLocked()
	// One platform-down record covers the whole sweep: replay folds
	// the same active→degraded transition.
	c.journalBestEffortLocked(journal.Record{Type: journal.EvPlatformDown, Platform: name})
	var affected []*Deployment
	for _, d := range c.deployments {
		if d.Platform == name && d.Status() == StatusActive {
			d.setStatus(StatusDegraded)
			affected = append(affected, d)
		}
	}
	sort.Slice(affected, func(i, j int) bool { return affected[i].ID < affected[j].ID })
	return affected
}

// MarkPlatformUp records a platform recovery: deployments still on it
// (not migrated away) return to Active.
func (c *Controller) MarkPlatformUp(name string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.leaderOnlyLocked() != nil {
		return
	}
	delete(c.platformDown, name)
	c.recordLocked("platform-up", "", name)
	c.bumpEpochLocked()
	c.journalBestEffortLocked(journal.Record{Type: journal.EvPlatformUp, Platform: name})
	for _, d := range c.deployments {
		if d.Platform == name && d.Status() == StatusDegraded {
			d.setStatus(StatusActive)
		}
	}
}

// PlatformHealth reports up/down per topology platform.
func (c *Controller) PlatformHealth() map[string]bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make(map[string]bool)
	for _, pl := range c.topo.Platforms() {
		out[pl] = !c.platformDown[pl]
	}
	return out
}

// Migration records one failover: From is the stale placement on the
// dead platform, To the verified replacement (same ID, new platform
// and address).
type Migration struct {
	From, To *Deployment
}

// Failover migrates every degraded deployment off a dead platform.
// Each module is re-placed through the full pipeline — operator
// policy, client requirements and the security rules are re-verified
// on the alternate platform, so failover cannot place a module the
// static checks would have refused (§4.3's obligation to handle
// platform failures without weakening In-Net's guarantees). Modules
// with no passing alternate turn StatusFailed and are reported in
// failed. Deployment IDs are preserved across migration.
func (c *Controller) Failover(name string) (migrated []Migration, failed []*Deployment) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.leaderOnlyLocked() != nil {
		return nil, nil
	}
	ids := make([]string, 0, len(c.deployments))
	for id, d := range c.deployments {
		if d.Platform == name && d.Status() != StatusFailed {
			ids = append(ids, id)
		}
	}
	sort.Strings(ids)
	for _, id := range ids {
		d := c.deployments[id]
		d.setStatus(StatusMigrating)
		c.beginSpanLocked("failover", id)
		// Remove the stale copy so the tentative snapshots compiled by
		// placeLocked do not include the unreachable module.
		delete(c.deployments, id)
		c.bumpEpochLocked()
		nd, err := c.placeLocked(d.req)
		if err != nil {
			c.deployments[id] = d
			d.setStatus(StatusFailed)
			c.bumpEpochLocked()
			c.FailedMigrations++
			c.journalBestEffortLocked(journal.Record{Type: journal.EvMigrateFailed, ID: id, Reason: err.Error()})
			c.recordLocked("migration-failed", err.Error(), id)
			c.endSpanLocked("migration-failed")
			failed = append(failed, d)
			continue
		}
		nd.ID = id
		c.deployments[id] = nd
		c.bumpEpochLocked()
		c.Migrations++
		c.journalBestEffortLocked(journal.Record{Type: journal.EvMigrate, Dep: depRecord(nd)})
		c.recordLocked("module-failover", d.Platform+" -> "+nd.Platform, id)
		c.span.SetRef(nd.Platform)
		c.endSpanLocked("migrated")
		migrated = append(migrated, Migration{From: d, To: nd})
	}
	return migrated, failed
}

// RetryFailed re-attempts placement of StatusFailed deployments
// (e.g. after a platform came back). Successfully re-placed modules
// return to Active under their original IDs.
func (c *Controller) RetryFailed() []*Deployment {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.leaderOnlyLocked() != nil {
		return nil
	}
	ids := make([]string, 0, len(c.deployments))
	for id, d := range c.deployments {
		if d.Status() == StatusFailed {
			ids = append(ids, id)
		}
	}
	sort.Strings(ids)
	var recovered []*Deployment
	for _, id := range ids {
		d := c.deployments[id]
		delete(c.deployments, id)
		c.bumpEpochLocked()
		c.beginSpanLocked("retry", id)
		nd, err := c.placeLocked(d.req)
		if err != nil {
			c.deployments[id] = d
			c.bumpEpochLocked()
			c.endSpanLocked("still-failed")
			continue
		}
		nd.ID = id
		c.deployments[id] = nd
		c.bumpEpochLocked()
		c.Migrations++
		c.journalBestEffortLocked(journal.Record{Type: journal.EvMigrate, Dep: depRecord(nd)})
		c.span.SetRef(nd.Platform)
		c.endSpanLocked("recovered")
		recovered = append(recovered, nd)
	}
	return recovered
}

// QueryResult answers a reachability query.
type QueryResult struct {
	Satisfied bool
	Reason    string
	Timings   Timings
}

// Query checks reachability requirements against the network as it
// currently stands — deployed modules included — without deploying
// anything. This is the probe of the paper's protocol-tunneling use
// case (§8): "the sender could use the In-Net API to send a UDP
// reachability requirement to the network... after which the client
// can make the optimal tunnel choice" instead of waiting out a
// transport timeout.
func (c *Controller) Query(requirements string) (*QueryResult, error) {
	reqs, err := policy.ParseAll(requirements)
	if err != nil {
		return nil, &RejectionError{Reason: fmt.Sprintf("bad requirements: %v", err)}
	}
	// Queries are read-only: snapshot the deployment set under the
	// lock, then compile and check concurrently with other queries —
	// §4.3's observation that "it is fairly easy to parallelize the
	// controller by simply having multiple machines answer the
	// queries" holds within one process too.
	steps, deadline := c.opts.admissionBudget()
	key := queryKey(requirements, steps)
	c.mu.Lock()
	hosted := c.hostedLocked(nil)
	var epoch string
	var cur map[string]string
	if c.deltaEnabled() {
		// digestsLocked builds a fresh map on every recompute and
		// never mutates one in place, so the snapshot reference is
		// safe to read after unlocking.
		cur = c.digestsLocked()
	} else {
		epoch = c.epochLocked()
	}
	c.mu.Unlock()
	// A cached verdict for this requirement text whose dependency
	// tokens (or epoch) still match answers the probe without
	// compiling or exploring anything — the §8 reachability probe
	// becomes a hash lookup under steady traffic.
	if res, ok := c.cachedQuery(key, epoch, cur); ok {
		return res, nil
	}
	out := &QueryResult{Satisfied: true}
	compileStart := time.Now()
	net, nm, err := c.topo.Compile(hosted)
	if err != nil {
		return nil, err
	}
	out.Timings.Compile = time.Since(compileStart)
	env := &policy.CheckEnv{
		Net: net, Map: nm, ClientNet: c.topo.ClientNet,
		MaxSteps: steps, Deadline: deadline,
		Workers: c.opts.workers(), Memo: c.memo,
	}
	if cur != nil {
		env.Visited = make(map[string]bool)
		env.RefNames = make(map[string]bool)
	}
	checkStart := time.Now()
	for _, r := range reqs {
		res, err := r.Check(env)
		if err != nil {
			return nil, budgetRejection(err)
		}
		if !res.Satisfied {
			out.Satisfied = false
			out.Reason = fmt.Sprintf("%q: %s", r, res.Reason)
			break
		}
	}
	out.Timings.Check = time.Since(checkStart)
	c.putQuery(key, epoch, cur, env, out)
	return out, nil
}

// Kill stops a processing module (§4.3: "clients can stop processing
// modules by issuing a kill command with the proper identifier").
func (c *Controller) Kill(id string) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if err := c.leaderOnlyLocked(); err != nil {
		return err
	}
	if _, ok := c.deployments[id]; !ok {
		return fmt.Errorf("controller: no deployment %q", id)
	}
	// Write-ahead: a kill that is not durable is not performed, so a
	// recovered controller can never resurrect a killed module.
	if jerr := c.appendSyncLocked(journal.Record{Type: journal.EvKill, ID: id}); jerr != nil {
		return fmt.Errorf("controller: journal kill: %w", jerr)
	}
	delete(c.deployments, id)
	c.bumpEpochLocked()
	return nil
}

// Deployments lists current deployments sorted by ID.
func (c *Controller) Deployments() []*Deployment {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]*Deployment, 0, len(c.deployments))
	for _, d := range c.deployments {
		out = append(out, d)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// PipelineStats summarizes the dataplane mode across live
// deployments: how many flatten into the compiled pipeline, how many
// fall back to the graph walk, and the fallback reasons (reason ->
// count). Workers echoes Options.PipelineWorkers.
type PipelineStats struct {
	Workers  int            `json:"workers"`
	Compiled int            `json:"compiled"`
	Fallback int            `json:"fallback"`
	Reasons  map[string]int `json:"reasons,omitempty"`
	// Modules maps each live module name to its fallback reason; a
	// compiled module maps to "".
	Modules map[string]string `json:"modules,omitempty"`
}

// PipelineStatsSnapshot computes PipelineStats over the current
// deployment set.
func (c *Controller) PipelineStatsSnapshot() PipelineStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	st := PipelineStats{Workers: c.opts.PipelineWorkers}
	for _, d := range c.deployments {
		if st.Modules == nil {
			st.Modules = make(map[string]string)
		}
		if d.PipelineCompiled {
			st.Compiled++
			st.Modules[d.ModuleName] = ""
			continue
		}
		st.Fallback++
		st.Modules[d.ModuleName] = d.PipelineFallback
		if st.Reasons == nil {
			st.Reasons = make(map[string]int)
		}
		st.Reasons[d.PipelineFallback]++
	}
	return st
}

// Get returns a deployment by ID.
func (c *Controller) Get(id string) (*Deployment, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	d, ok := c.deployments[id]
	return d, ok
}

// hostedLocked lists all hosted modules plus an optional tentative
// one. Failed deployments are excluded: their modules are not on the
// network.
func (c *Controller) hostedLocked(extra *topology.HostedModule) []topology.HostedModule {
	var out []topology.HostedModule
	for _, d := range c.deployments {
		if d.Status() == StatusFailed {
			continue
		}
		out = append(out, d.module)
	}
	if extra != nil {
		out = append(out, *extra)
	}
	return out
}

// allocAddrLocked picks the lowest free host address in the
// platform's pool, so addresses freed by Kill are reused.
func (c *Controller) allocAddrLocked(platform string) (uint32, bool) {
	node := c.topo.Node(platform)
	if node == nil {
		return 0, false
	}
	lo, hi := node.Pool.Range()
	used := make(map[uint32]bool)
	for _, d := range c.deployments {
		if d.Platform == platform {
			used[d.Addr] = true
		}
	}
	// lo is the network address, hi the broadcast; both excluded.
	for a := lo + 1; a < hi; a++ {
		if !used[a] {
			return a, true
		}
	}
	return 0, false
}

// resolveConfig picks the Click source for the request.
func resolveConfig(req Request) (src string, isVM bool, err error) {
	switch {
	case req.Config != "" && req.Stock != "":
		return "", false, &RejectionError{Reason: "request has both a configuration and a stock module"}
	case req.Config != "":
		return req.Config, false, nil
	case req.Stock != "":
		src, ok := StockModules[req.Stock]
		if !ok {
			return "", false, &RejectionError{Reason: fmt.Sprintf("unknown stock module %q", req.Stock)}
		}
		return src, src == "", nil
	default:
		return "", false, &RejectionError{Reason: "request has no configuration"}
	}
}

func buildConfig(src string) (*click.Router, error) {
	cfg, err := clicklang.Parse(src)
	if err != nil {
		return nil, err
	}
	return click.Build(cfg)
}

// SandboxConfig wraps a single-interface configuration with a
// ChangeEnforcer (§4.4): the enforcer is injected on the path from
// FromNetfront into the module and on the path from the module to
// ToNetfront, and is configured with the tenant's whitelist. The
// enforcer becomes part of the client configuration — "this has the
// benefit of billing the user for the sandboxing".
func SandboxConfig(src string, whitelist []uint32) (string, error) {
	cfg, err := clicklang.Parse(src)
	if err != nil {
		return "", err
	}
	var fromName, toName string
	for _, d := range cfg.Decls {
		switch d.Class {
		case "FromNetfront", "FromDevice":
			if fromName != "" {
				return "", fmt.Errorf("controller: cannot sandbox a module with multiple ingress elements")
			}
			fromName = d.Name
		case "ToNetfront", "ToDevice":
			if toName != "" {
				return "", fmt.Errorf("controller: cannot sandbox a module with multiple egress elements")
			}
			toName = d.Name
		}
	}
	if fromName == "" || toName == "" {
		return "", fmt.Errorf("controller: module must have FromNetfront and ToNetfront to be sandboxed")
	}
	var wl []string
	for _, ip := range whitelist {
		wl = append(wl, packet.IPString(ip))
	}
	wlArg := ""
	if len(wl) > 0 {
		wlArg = "whitelist " + strings.Join(wl, " ")
	}

	var b strings.Builder
	for _, d := range cfg.Decls {
		fmt.Fprintf(&b, "%s :: %s(%s);\n", d.Name, d.Class, d.RawArgs)
	}
	fmt.Fprintf(&b, "__sandbox :: ChangeEnforcer(%s);\n", wlArg)
	egressWired := false
	for _, cn := range cfg.Conns {
		from, fromPort, to, toPort := cn.From, cn.FromPort, cn.To, cn.ToPort
		if from == fromName {
			// ingress -> enforcer(inbound) -> original target
			fmt.Fprintf(&b, "%s[%d] -> [0]__sandbox;\n", from, fromPort)
			fmt.Fprintf(&b, "__sandbox[0] -> [%d]%s;\n", toPort, to)
			continue
		}
		if to == toName {
			// original source(s) -> enforcer(outbound) -> egress; the
			// egress side is wired once even with fan-in.
			fmt.Fprintf(&b, "%s[%d] -> [1]__sandbox;\n", from, fromPort)
			if !egressWired {
				fmt.Fprintf(&b, "__sandbox[1] -> [%d]%s;\n", toPort, to)
				egressWired = true
			}
			continue
		}
		fmt.Fprintf(&b, "%s[%d] -> [%d]%s;\n", from, fromPort, toPort, to)
	}
	return b.String(), nil
}
