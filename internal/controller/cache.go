// Admission-cache wiring: content-addressed memoization of the
// controller's symbolic-execution verdicts (security checks and
// placement-dependent requirement/policy checks) in an LRU keyed on
// the canonicalized inputs and tagged with a topology epoch.
//
// Key discipline — the cache must never change an admission decision:
//
//   - Security-check entries are keyed on the canonicalized deployed
//     source (after $MODULE_IP substitution), the module name (element
//     node names embed it), the assigned address, the trust class, the
//     whitelist, the transparency flag, the operator's amplification
//     policy and the step budget: every input security.Check reads.
//     They carry symexec.AnyEpoch — a standalone module's analysis
//     does not depend on what else is deployed.
//   - Placement-check and query entries additionally depend on the
//     compiled network snapshot. By default they record *which parts*
//     of it the check actually read — dependency tokens derived from
//     the nodes the symbolic runs visited and the module names the
//     requirements referenced — and a lookup revalidates only those
//     tokens against the current digest table (epoch-delta
//     invalidation: an unrelated deploy/kill/outage leaves the entry
//     hot). Under Options.WholesaleInvalidation they fall back to the
//     legacy discipline: tagged with a single topology epoch (content
//     hash of the hosted-module set plus the down-platform set), so
//     ANY mutation invalidates every placement-dependent entry.
//     Either way invalidation is lazy: a stale lookup deletes the
//     entry, and since tokens/epochs are content-derived,
//     deploy→kill→re-deploy returns to the prior state and warm
//     entries hit again.
//
// Cache state is never journaled and never persisted: admit/reject
// records are byte-identical whether the verdict came from the cache
// or from a cold run (the differential and chaos-regression tests
// assert this), and a restored controller simply starts cold.
package controller

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"sort"
	"strings"
	"time"

	"github.com/in-net/innet/internal/clicklang"
	"github.com/in-net/innet/internal/policy"
	"github.com/in-net/innet/internal/security"
	"github.com/in-net/innet/internal/symexec"
	"github.com/in-net/innet/internal/topology"
)

// DefaultAdmissionCache is the LRU capacity when Options.AdmissionCache
// is zero.
const DefaultAdmissionCache = 512

// hashKey renders a cache key as the SHA-256 of its length-delimited
// parts (content addressing; no part can collide into another).
func hashKey(parts ...string) string {
	h := sha256.New()
	for _, p := range parts {
		fmt.Fprintf(h, "%d:", len(p))
		h.Write([]byte(p))
	}
	return hex.EncodeToString(h.Sum(nil))
}

// canonicalOrRaw canonicalizes a Click source for key purposes,
// falling back to the raw text when it does not parse (the subsequent
// cold check will reject it with a parse error; keying on raw bytes
// still caches deterministically).
func canonicalOrRaw(src string) string {
	c, err := clicklang.Canonical(src)
	if err != nil {
		return "raw\x00" + src
	}
	return c
}

// securityKey content-addresses one security.Check invocation.
func securityKey(in security.Input, src string, banConnectionless bool) string {
	wl := make([]string, len(in.Whitelist))
	for i, ip := range in.Whitelist {
		wl[i] = fmt.Sprintf("%d", ip)
	}
	sort.Strings(wl)
	return hashKey(
		"sec",
		canonicalOrRaw(src),
		in.ModuleID,
		fmt.Sprintf("%d", in.Addr),
		fmt.Sprintf("%d", in.Trust),
		strings.Join(wl, ","),
		fmt.Sprintf("%t", in.Transparent),
		fmt.Sprintf("%t", banConnectionless),
		fmt.Sprintf("%d", in.MaxSteps),
	)
}

// placementKey content-addresses one checkPlacementLocked invocation
// (epoch-tagged by the caller via cacheGet/cachePut).
func placementKey(platformName string, addr uint32, deploySrc, requirements string, steps int) string {
	return hashKey(
		"place",
		platformName,
		fmt.Sprintf("%d", addr),
		canonicalOrRaw(deploySrc),
		requirements,
		fmt.Sprintf("%d", steps),
	)
}

// queryKey content-addresses one Query invocation (epoch-tagged).
func queryKey(requirements string, steps int) string {
	return hashKey("query", requirements, fmt.Sprintf("%d", steps))
}

// cloneReport deep-copies a security report so cached state can never
// be aliased by callers.
func cloneReport(rep *security.Report) *security.Report {
	if rep == nil {
		return nil
	}
	c := *rep
	c.Reasons = append([]string(nil), rep.Reasons...)
	c.Findings = append([]security.FlowFinding(nil), rep.Findings...)
	return &c
}

// epochLocked returns the topology epoch, recomputing the content
// hash only when the deployment set or platform health changed since
// the last call.
func (c *Controller) epochLocked() string {
	if !c.epochDirty && c.epoch != "" {
		return c.epoch
	}
	ids := make([]string, 0, len(c.deployments))
	for id := range c.deployments {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	h := sha256.New()
	for _, id := range ids {
		d := c.deployments[id]
		if d.Status() == StatusFailed {
			continue // failed modules are off the network (hostedLocked)
		}
		fmt.Fprintf(h, "%s\x00%s\x00%d\x00%d:%s\n", d.ModuleName, d.Platform, d.Addr, len(d.Config), d.Config)
	}
	downs := make([]string, 0, len(c.platformDown))
	for name, down := range c.platformDown {
		if down {
			downs = append(downs, name)
		}
	}
	sort.Strings(downs)
	fmt.Fprintf(h, "down:%s", strings.Join(downs, ","))
	c.epoch = hex.EncodeToString(h.Sum(nil))
	c.epochDirty = false
	return c.epoch
}

// bumpEpochLocked marks the topology epoch and the per-platform
// digest table stale. Call after every mutation of the deployment set
// or platform health.
func (c *Controller) bumpEpochLocked() {
	if !c.epochDirty || !c.digestsDirty {
		// First invalidation since the last recompute of either staleness
		// surface (the epoch hash in wholesale mode, the digest table in
		// delta mode): one event per burst of mutations, so the recorder
		// is not flooded.
		c.recordLocked("cache-invalidate", "topology mutation", "")
	}
	c.epochDirty = true
	c.digestsDirty = true
}

// digestsLocked returns the dependency-token digest table for
// epoch-delta invalidation, recomputing it only after mutations.
// Tokens:
//
//   - "pf:<platform>" digests the live module set hosted on a
//     platform (name, address, deployed config — everything that
//     shapes the platform's demux and element graphs). Sorted, so the
//     digest is independent of map iteration order; check outcomes
//     are branch-order-independent, so that is sound.
//   - "mod:<name>" digests one live deployment by module name (absent
//     names simply have no entry, which GetValidated sees as "").
//     Requirement references resolve by module name, so an outcome
//     can depend on a name's existence/content even when no flow
//     reaches its platform.
//
// Platform *health* is deliberately excluded: down platforms are
// skipped before any cached check runs, so an outage flip touches no
// cached placement/query entry — the headline win over wholesale
// epoch invalidation, where MarkPlatformDown invalidated everything.
func (c *Controller) digestsLocked() map[string]string {
	if !c.digestsDirty && c.digests != nil {
		return c.digests
	}
	perPf := make(map[string][]string)
	out := make(map[string]string)
	for _, d := range c.deployments {
		if d.Status() == StatusFailed {
			continue // failed modules are off the network (hostedLocked)
		}
		line := fmt.Sprintf("%s\x00%s\x00%d\x00%d:%s", d.ModuleName, d.Platform, d.Addr, len(d.Config), d.Config)
		perPf[d.Platform] = append(perPf[d.Platform], line)
		out["mod:"+d.ModuleName] = hashKey("mod", line)
	}
	for _, pl := range c.topo.Platforms() {
		lines := perPf[pl]
		sort.Strings(lines)
		out["pf:"+pl] = hashKey(append([]string{"pf"}, lines...)...)
	}
	c.digests = out
	c.digestsDirty = false
	return out
}

// depsValid reports whether every recorded dependency token still
// digests to its recorded value.
func depsValid(deps, cur map[string]string) bool {
	for tok, d := range deps {
		if cur[tok] != d {
			return false
		}
	}
	return true
}

// depsFor converts a check's observed footprint (visited compiled
// nodes + by-name references) into dependency tokens valued from the
// digest snapshot the check ran against. Static topology nodes
// (routers, endpoints, middlebox elements) produce no token — the
// topology is immutable for a controller's lifetime; only the
// deployment set changes.
func (c *Controller) depsFor(env *policy.CheckEnv, cur map[string]string) map[string]string {
	deps := make(map[string]string)
	for node := range env.Visited {
		base := node
		if i := strings.IndexByte(node, '/'); i >= 0 {
			base = node[:i]
		}
		if n := c.topo.Node(base); n != nil {
			if n.Kind == topology.KindPlatform {
				deps["pf:"+base] = cur["pf:"+base]
			}
			continue // static topology node
		}
		if m := env.Map.Module(base); m != nil {
			deps["pf:"+m.Platform] = cur["pf:"+m.Platform]
		}
	}
	for name := range env.RefNames {
		deps["mod:"+name] = cur["mod:"+name]
	}
	return deps
}

// deltaEnabled reports whether placement/query entries use
// dependency-validated (epoch-delta) invalidation.
func (c *Controller) deltaEnabled() bool {
	return c.cache != nil && !c.opts.WholesaleInvalidation
}

// CacheStats snapshots the admission cache counters (zero stats when
// caching is disabled).
func (c *Controller) CacheStats() symexec.CacheStats {
	return c.cache.Stats()
}

// MemoStats snapshots the per-element symbolic-execution memo
// counters (zero stats when the memo is disabled).
func (c *Controller) MemoStats() symexec.MemoStats {
	return c.memo.Stats()
}

// checkedSecurity runs the security check through the cache. Budget
// errors are never cached; verdicts (including rejections, with their
// reasons) are, so a repeated identical request settles without
// re-running the symbolic execution.
func (c *Controller) checkedSecurity(in security.Input, src string) (*security.Report, error) {
	if c.cache == nil {
		start := time.Now()
		rep, err := security.Check(in)
		c.stageLocked(StageSecurity, start, securityDetail(rep, err))
		return rep, err
	}
	key := securityKey(in, src, in.BanConnectionlessReplies)
	lstart := time.Now()
	if v, ok := c.cache.Get(key, symexec.AnyEpoch); ok {
		c.stageLocked(StageCacheLookup, lstart, "security: hit")
		return cloneReport(v.(*security.Report)), nil
	}
	c.stageLocked(StageCacheLookup, lstart, "security: miss")
	start := time.Now()
	rep, err := security.Check(in)
	c.stageLocked(StageSecurity, start, securityDetail(rep, err))
	if err != nil {
		return nil, err
	}
	c.cache.Put(key, symexec.AnyEpoch, cloneReport(rep))
	return rep, nil
}

// securityDetail renders a security-check outcome for a trace stage.
func securityDetail(rep *security.Report, err error) string {
	if err != nil {
		return "error"
	}
	return "verdict " + rep.Verdict.String()
}

// policyDetail renders a placement-check outcome for a trace stage.
func policyDetail(platformName, reason string, err error) string {
	switch {
	case err != nil:
		return "budget exhausted"
	case reason == "":
		return "ok: " + platformName
	default:
		return reason
	}
}

// cachedQuery consults the cache for a full Query result. In delta
// mode (cur != nil) the entry hits while its recorded dependency
// tokens still match cur; in wholesale mode it hits on an exact epoch
// match.
func (c *Controller) cachedQuery(key, epoch string, cur map[string]string) (*QueryResult, bool) {
	if c.cache == nil {
		return nil, false
	}
	var v any
	var ok bool
	if cur != nil {
		v, ok = c.cache.GetValidated(key, func(deps map[string]string) bool {
			return depsValid(deps, cur)
		})
	} else {
		v, ok = c.cache.Get(key, epoch)
	}
	if !ok {
		return nil, false
	}
	r := *(v.(*QueryResult))
	return &r, true
}

// putQuery stores a Query result. The dependency values come from the
// digest snapshot (cur) the check actually ran against, so a topology
// mutation racing with an unlocked query run leaves a stale-valued
// entry that the next lookup discards — never a wrong hit.
func (c *Controller) putQuery(key, epoch string, cur map[string]string, env *policy.CheckEnv, r *QueryResult) {
	if c.cache == nil {
		return
	}
	cp := *r
	cp.Timings = Timings{} // cached verdicts cost nothing; don't replay stale timings
	if cur != nil {
		c.cache.PutDeps(key, c.depsFor(env, cur), &cp)
		return
	}
	c.cache.Put(key, epoch, &cp)
}
