// Admission-cache wiring: content-addressed memoization of the
// controller's symbolic-execution verdicts (security checks and
// placement-dependent requirement/policy checks) in an LRU keyed on
// the canonicalized inputs and tagged with a topology epoch.
//
// Key discipline — the cache must never change an admission decision:
//
//   - Security-check entries are keyed on the canonicalized deployed
//     source (after $MODULE_IP substitution), the module name (element
//     node names embed it), the assigned address, the trust class, the
//     whitelist, the transparency flag, the operator's amplification
//     policy and the step budget: every input security.Check reads.
//     They carry symexec.AnyEpoch — a standalone module's analysis
//     does not depend on what else is deployed.
//   - Placement-check entries additionally depend on the compiled
//     network snapshot, so they are tagged with the topology epoch: a
//     content hash of the hosted-module set (platform, address,
//     deployed source per live deployment) plus the down-platform set.
//     The epoch is recomputed lazily after mutations; a lookup against
//     a stale epoch deletes the entry (lazy invalidation). Because the
//     epoch is content-derived, deploy→kill→re-deploy returns to the
//     prior epoch and warm entries hit again.
//
// Cache state is never journaled and never persisted: admit/reject
// records are byte-identical whether the verdict came from the cache
// or from a cold run (the differential and chaos-regression tests
// assert this), and a restored controller simply starts cold.
package controller

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"sort"
	"strings"
	"time"

	"github.com/in-net/innet/internal/clicklang"
	"github.com/in-net/innet/internal/security"
	"github.com/in-net/innet/internal/symexec"
)

// DefaultAdmissionCache is the LRU capacity when Options.AdmissionCache
// is zero.
const DefaultAdmissionCache = 512

// hashKey renders a cache key as the SHA-256 of its length-delimited
// parts (content addressing; no part can collide into another).
func hashKey(parts ...string) string {
	h := sha256.New()
	for _, p := range parts {
		fmt.Fprintf(h, "%d:", len(p))
		h.Write([]byte(p))
	}
	return hex.EncodeToString(h.Sum(nil))
}

// canonicalOrRaw canonicalizes a Click source for key purposes,
// falling back to the raw text when it does not parse (the subsequent
// cold check will reject it with a parse error; keying on raw bytes
// still caches deterministically).
func canonicalOrRaw(src string) string {
	c, err := clicklang.Canonical(src)
	if err != nil {
		return "raw\x00" + src
	}
	return c
}

// securityKey content-addresses one security.Check invocation.
func securityKey(in security.Input, src string, banConnectionless bool) string {
	wl := make([]string, len(in.Whitelist))
	for i, ip := range in.Whitelist {
		wl[i] = fmt.Sprintf("%d", ip)
	}
	sort.Strings(wl)
	return hashKey(
		"sec",
		canonicalOrRaw(src),
		in.ModuleID,
		fmt.Sprintf("%d", in.Addr),
		fmt.Sprintf("%d", in.Trust),
		strings.Join(wl, ","),
		fmt.Sprintf("%t", in.Transparent),
		fmt.Sprintf("%t", banConnectionless),
		fmt.Sprintf("%d", in.MaxSteps),
	)
}

// placementKey content-addresses one checkPlacementLocked invocation
// (epoch-tagged by the caller via cacheGet/cachePut).
func placementKey(platformName string, addr uint32, deploySrc, requirements string, steps int) string {
	return hashKey(
		"place",
		platformName,
		fmt.Sprintf("%d", addr),
		canonicalOrRaw(deploySrc),
		requirements,
		fmt.Sprintf("%d", steps),
	)
}

// queryKey content-addresses one Query invocation (epoch-tagged).
func queryKey(requirements string, steps int) string {
	return hashKey("query", requirements, fmt.Sprintf("%d", steps))
}

// cloneReport deep-copies a security report so cached state can never
// be aliased by callers.
func cloneReport(rep *security.Report) *security.Report {
	if rep == nil {
		return nil
	}
	c := *rep
	c.Reasons = append([]string(nil), rep.Reasons...)
	c.Findings = append([]security.FlowFinding(nil), rep.Findings...)
	return &c
}

// epochLocked returns the topology epoch, recomputing the content
// hash only when the deployment set or platform health changed since
// the last call.
func (c *Controller) epochLocked() string {
	if !c.epochDirty && c.epoch != "" {
		return c.epoch
	}
	ids := make([]string, 0, len(c.deployments))
	for id := range c.deployments {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	h := sha256.New()
	for _, id := range ids {
		d := c.deployments[id]
		if d.Status() == StatusFailed {
			continue // failed modules are off the network (hostedLocked)
		}
		fmt.Fprintf(h, "%s\x00%s\x00%d\x00%d:%s\n", d.ModuleName, d.Platform, d.Addr, len(d.Config), d.Config)
	}
	downs := make([]string, 0, len(c.platformDown))
	for name, down := range c.platformDown {
		if down {
			downs = append(downs, name)
		}
	}
	sort.Strings(downs)
	fmt.Fprintf(h, "down:%s", strings.Join(downs, ","))
	c.epoch = hex.EncodeToString(h.Sum(nil))
	c.epochDirty = false
	return c.epoch
}

// bumpEpochLocked marks the topology epoch stale. Call after every
// mutation of the deployment set or platform health.
func (c *Controller) bumpEpochLocked() { c.epochDirty = true }

// CacheStats snapshots the admission cache counters (zero stats when
// caching is disabled).
func (c *Controller) CacheStats() symexec.CacheStats {
	return c.cache.Stats()
}

// checkedSecurity runs the security check through the cache. Budget
// errors are never cached; verdicts (including rejections, with their
// reasons) are, so a repeated identical request settles without
// re-running the symbolic execution.
func (c *Controller) checkedSecurity(in security.Input, src string) (*security.Report, error) {
	if c.cache == nil {
		start := time.Now()
		rep, err := security.Check(in)
		c.stageLocked(StageSecurity, start, securityDetail(rep, err))
		return rep, err
	}
	key := securityKey(in, src, in.BanConnectionlessReplies)
	lstart := time.Now()
	if v, ok := c.cache.Get(key, symexec.AnyEpoch); ok {
		c.stageLocked(StageCacheLookup, lstart, "security: hit")
		return cloneReport(v.(*security.Report)), nil
	}
	c.stageLocked(StageCacheLookup, lstart, "security: miss")
	start := time.Now()
	rep, err := security.Check(in)
	c.stageLocked(StageSecurity, start, securityDetail(rep, err))
	if err != nil {
		return nil, err
	}
	c.cache.Put(key, symexec.AnyEpoch, cloneReport(rep))
	return rep, nil
}

// securityDetail renders a security-check outcome for a trace stage.
func securityDetail(rep *security.Report, err error) string {
	if err != nil {
		return "error"
	}
	return "verdict " + rep.Verdict.String()
}

// policyDetail renders a placement-check outcome for a trace stage.
func policyDetail(platformName, reason string, err error) string {
	switch {
	case err != nil:
		return "budget exhausted"
	case reason == "":
		return "ok: " + platformName
	default:
		return reason
	}
}

// cachedQuery consults the epoch-tagged cache for a full Query result.
func (c *Controller) cachedQuery(key, epoch string) (*QueryResult, bool) {
	if c.cache == nil {
		return nil, false
	}
	v, ok := c.cache.Get(key, epoch)
	if !ok {
		return nil, false
	}
	r := *(v.(*QueryResult))
	return &r, true
}

func (c *Controller) putQuery(key, epoch string, r *QueryResult) {
	if c.cache == nil {
		return
	}
	cp := *r
	cp.Timings = Timings{} // cached verdicts cost nothing; don't replay stale timings
	c.cache.Put(key, epoch, &cp)
}
