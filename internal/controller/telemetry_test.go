package controller

import (
	"strings"
	"testing"

	"github.com/in-net/innet/internal/telemetry"
)

// TestDeployTraceCoversEveryStage pins the acceptance criterion that
// a freshly deployed module's trace shows every admission stage with
// a duration, and that the per-stage histograms and verdict counters
// land in the registry.
func TestDeployTraceCoversEveryStage(t *testing.T) {
	c := newController(t)
	reg := telemetry.New()
	tr := telemetry.NewTracer(16)
	c.AttachTelemetry(reg, tr)

	dep, err := c.Deploy(batcherRequest())
	if err != nil {
		t.Fatal(err)
	}

	traces := tr.Recent(1)
	if len(traces) != 1 {
		t.Fatalf("got %d traces, want 1", len(traces))
	}
	trace := traces[0]
	if trace.Kind != "deploy" || trace.ID != "Batcher" {
		t.Errorf("trace = %s/%s, want deploy/Batcher", trace.Kind, trace.ID)
	}
	if trace.Verdict != "admitted" {
		t.Errorf("verdict = %q, want admitted", trace.Verdict)
	}
	if trace.Ref != dep.ID {
		t.Errorf("ref = %q, want %q", trace.Ref, dep.ID)
	}
	seen := map[string]bool{}
	for _, st := range trace.Stages {
		seen[st.Name] = true
		if st.Duration < 0 {
			t.Errorf("stage %s has negative duration", st.Name)
		}
	}
	for _, want := range AdmissionStages {
		if !seen[want] {
			t.Errorf("trace missing stage %q (stages: %+v)", want, trace.Stages)
		}
	}
	if trace.Total <= 0 {
		t.Errorf("total = %v, want > 0", trace.Total)
	}

	var b strings.Builder
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		`innet_admission_stage_seconds_count{stage="security-symexec"}`,
		`innet_admission_stage_seconds_count{stage="policy-check"}`,
		`innet_admission_stage_seconds_count{stage="placement"}`,
		`innet_admission_stage_seconds_count{stage="journal-append"}`,
		`innet_admission_verdicts_total{verdict="admitted"} 1`,
		`innet_controller_placed_total 1`,
		`innet_controller_deployments 1`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q", want)
		}
	}
}

// TestRejectionCountsVerdict pins that refusals land in the rejected
// verdict counter and commit a rejected trace.
func TestRejectionCountsVerdict(t *testing.T) {
	c := newController(t)
	reg := telemetry.New()
	tr := telemetry.NewTracer(16)
	c.AttachTelemetry(reg, tr)

	req := batcherRequest()
	req.Config = "not click at all ("
	if _, err := c.Deploy(req); err == nil {
		t.Fatal("expected rejection")
	}
	traces := tr.Recent(1)
	if len(traces) != 1 || traces[0].Verdict != "rejected" {
		t.Fatalf("traces = %+v, want one rejected", traces)
	}
	var b strings.Builder
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), `innet_admission_verdicts_total{verdict="rejected"} 1`) {
		t.Error("rejected verdict not counted")
	}
}

// TestDetachedTelemetryIsHarmless pins that a controller with no
// telemetry attached still runs the instrumented pipeline unchanged.
func TestDetachedTelemetryIsHarmless(t *testing.T) {
	c := newController(t)
	if _, err := c.Deploy(batcherRequest()); err != nil {
		t.Fatal(err)
	}
	if c.Tracer() != nil {
		t.Error("tracer should be nil when never attached")
	}
}
