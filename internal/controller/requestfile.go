package controller

import (
	"fmt"
	"strings"

	"github.com/in-net/innet/internal/security"
)

// ParseRequestFile parses the textual client-request format modeled
// on the paper's Fig. 4, where one document carries the processing
// module and its requirements:
//
//	# the push-notification batcher
//	module: Batcher
//	tenant: alice
//	trust: client
//	whitelist: 192.0.2.1, 192.0.2.2
//
//	config:
//	  FromNetfront() ->
//	  IPFilter(allow udp port 1500) ->
//	  IPRewriter(pattern - - 172.16.15.133 - 0 0)
//	  -> TimedUnqueue(120,100)
//	  -> dst::ToNetfront()
//
//	requirements:
//	  reach from internet udp
//	  -> Batcher:dst:0 dst 172.16.15.133
//	  -> client dst port 1500
//	  const proto && dst port && payload
//
// Header keys: module (required), tenant, trust
// (third-party|client|operator), whitelist (comma-separated),
// transparent (true|false), stock (stock module name). The config:
// and requirements: sections run to the next section or EOF. Lines
// starting with # are comments.
func ParseRequestFile(src string) (Request, error) {
	var req Request
	lines := strings.Split(src, "\n")
	section := "" // "", "config", "requirements"
	var config, requirements []string

	for i, raw := range lines {
		line := strings.TrimRight(raw, " \t\r")
		trimmed := strings.TrimSpace(line)
		if strings.HasPrefix(trimmed, "#") {
			continue
		}
		lower := strings.ToLower(trimmed)
		switch {
		case lower == "config:":
			section = "config"
			continue
		case lower == "requirements:":
			section = "requirements"
			continue
		}
		switch section {
		case "config":
			config = append(config, line)
			continue
		case "requirements":
			requirements = append(requirements, line)
			continue
		}
		if trimmed == "" {
			continue
		}
		key, value, ok := strings.Cut(trimmed, ":")
		if !ok {
			return req, fmt.Errorf("controller: request line %d: expected 'key: value', got %q", i+1, trimmed)
		}
		value = strings.TrimSpace(value)
		switch strings.ToLower(strings.TrimSpace(key)) {
		case "module", "name":
			req.ModuleName = value
		case "tenant":
			req.Tenant = value
		case "trust":
			trust, err := parseTrustName(value)
			if err != nil {
				return req, fmt.Errorf("controller: request line %d: %v", i+1, err)
			}
			req.Trust = trust
		case "whitelist":
			for _, w := range strings.Split(value, ",") {
				if w = strings.TrimSpace(w); w != "" {
					req.Whitelist = append(req.Whitelist, w)
				}
			}
		case "transparent":
			switch strings.ToLower(value) {
			case "true", "yes":
				req.Transparent = true
			case "false", "no", "":
				req.Transparent = false
			default:
				return req, fmt.Errorf("controller: request line %d: bad transparent value %q", i+1, value)
			}
		case "stock":
			req.Stock = value
		default:
			return req, fmt.Errorf("controller: request line %d: unknown key %q", i+1, key)
		}
	}
	req.Config = strings.TrimSpace(strings.Join(config, "\n"))
	req.Requirements = strings.TrimSpace(strings.Join(requirements, "\n"))
	if req.ModuleName == "" {
		return req, fmt.Errorf("controller: request file missing 'module:'")
	}
	if req.Config == "" && req.Stock == "" {
		return req, fmt.Errorf("controller: request file needs a config: section or a stock: module")
	}
	if req.Config != "" && req.Stock != "" {
		return req, fmt.Errorf("controller: request file has both config: and stock:")
	}
	return req, nil
}

func parseTrustName(s string) (security.TrustClass, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "", "third-party", "thirdparty":
		return security.ThirdParty, nil
	case "client":
		return security.Client, nil
	case "operator":
		return security.Operator, nil
	default:
		return 0, fmt.Errorf("unknown trust class %q", s)
	}
}
