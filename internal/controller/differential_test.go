package controller

import (
	"fmt"
	"strings"
	"testing"

	_ "github.com/in-net/innet/internal/elements"
	"github.com/in-net/innet/internal/packet"
	"github.com/in-net/innet/internal/security"
	"github.com/in-net/innet/internal/topology"
)

// The differential admission test: the cache must be invisible in
// every admission outcome. One scripted request sequence — accepts,
// rejects (policy and security, with their reasons), queries, kills,
// re-deploys — runs against (a) a controller with caching disabled,
// (b) a cache-enabled controller on its cold first pass and (c) the
// same controller again, now answering from warm cache, and the three
// transcripts must match byte for byte. Deployment IDs are the only
// field excluded: the ID counter is monotonic across passes by
// design.

const spoofConfig = `
in :: FromNetfront();
sp :: SetIPSrc(203.0.113.66);
fwd :: SetIPDst(192.0.2.1);
out :: ToNetfront();
in -> sp -> fwd -> out;
`

// admissionScript runs the scripted sequence and serializes every
// outcome. The script ends with the deployment set empty, so a second
// pass starts from the same topology epoch it began with.
func admissionScript(c *Controller) string {
	var b strings.Builder
	deploy := func(label string, req Request) string {
		dep, err := c.Deploy(req)
		if err != nil {
			fmt.Fprintf(&b, "deploy %s: err %v\n", label, err)
			return ""
		}
		fmt.Fprintf(&b, "deploy %s: ok platform=%s addr=%s sandboxed=%t verdict=%v reasons=%q findings=%d config=%d:%s\n",
			label, dep.Platform, packet.IPString(dep.Addr), dep.Sandboxed,
			dep.Security.Verdict, dep.Security.Reasons, len(dep.Security.Findings),
			len(dep.Config), dep.Config)
		return dep.ID
	}
	query := func(label, reqs string) {
		res, err := c.Query(reqs)
		if err != nil {
			fmt.Fprintf(&b, "query %s: err %v\n", label, err)
			return
		}
		fmt.Fprintf(&b, "query %s: satisfied=%t reason=%q\n", label, res.Satisfied, res.Reason)
	}

	id := deploy("batcher", batcherRequest())
	deploy("dup", batcherRequest())

	unsat := batcherRequest()
	unsat.ModuleName = "Batcher2"
	unsat.Requirements = "reach from internet tcp -> Batcher2:dst:0 -> client"
	deploy("unsat", unsat)

	deploy("spoof", Request{
		Tenant: "mallory", ModuleName: "spoof", Trust: security.ThirdParty,
		Config: spoofConfig, Whitelist: []string{"192.0.2.1"},
	})

	query("reach", batcherRequirements)
	query("unreach", "reach from internet tcp -> Batcher:dst:0 -> client")

	if id != "" {
		fmt.Fprintf(&b, "kill batcher: %v\n", c.Kill(id))
	}
	// Re-deploy after kill: the warm pass must hand back the identical
	// placement (address allocation is deterministic) and verdict.
	id2 := deploy("batcher-again", batcherRequest())
	if id2 != "" {
		fmt.Fprintf(&b, "kill batcher-again: %v\n", c.Kill(id2))
	}
	return b.String()
}

func newDifferentialController(t *testing.T, cacheSize int) *Controller {
	t.Helper()
	topo, err := topology.PaperFig3()
	if err != nil {
		t.Fatal(err)
	}
	c, err := NewWithOptions(topo, operatorHTTPPolicy, Options{AdmissionCache: cacheSize})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestAdmissionCacheDifferential(t *testing.T) {
	uncached := newDifferentialController(t, -1)
	cold := admissionScript(uncached)
	if s := uncached.CacheStats(); s.Hits != 0 || s.Misses != 0 {
		t.Fatalf("disabled cache recorded traffic: %+v", s)
	}

	cached := newDifferentialController(t, 0)
	first := admissionScript(cached)
	statsAfterFirst := cached.CacheStats()
	warm := admissionScript(cached)
	statsAfterWarm := cached.CacheStats()

	if first != cold {
		t.Errorf("cache-enabled cold pass diverges from uncached run:\n--- uncached ---\n%s--- cached ---\n%s", cold, first)
	}
	if warm != cold {
		t.Errorf("warm pass diverges from uncached run:\n--- uncached ---\n%s--- warm ---\n%s", cold, warm)
	}
	if statsAfterWarm.Hits <= statsAfterFirst.Hits {
		t.Errorf("warm pass did not hit the cache: first=%+v warm=%+v", statsAfterFirst, statsAfterWarm)
	}
	// The first pass itself re-deploys an identical module after a
	// kill, so even it must see some hits.
	if statsAfterFirst.Hits == 0 {
		t.Errorf("redeploy within first pass missed the cache: %+v", statsAfterFirst)
	}
}

// TestAdmissionCacheRejectionReasonsStable pins the property the
// differential transcript relies on for refusals: a cached security
// verdict reproduces the rejection reason text exactly.
func TestAdmissionCacheRejectionReasonsStable(t *testing.T) {
	c := newDifferentialController(t, 0)
	req := Request{
		Tenant: "mallory", ModuleName: "spoof", Trust: security.ThirdParty,
		Config: spoofConfig, Whitelist: []string{"192.0.2.1"},
	}
	_, err1 := c.Deploy(req)
	if err1 == nil {
		t.Fatal("spoofing module accepted")
	}
	hits := c.CacheStats().Hits
	_, err2 := c.Deploy(req)
	if err2 == nil {
		t.Fatal("spoofing module accepted on retry")
	}
	if err1.Error() != err2.Error() {
		t.Errorf("rejection text changed:\ncold: %s\nwarm: %s", err1, err2)
	}
	if c.CacheStats().Hits <= hits {
		t.Errorf("retry did not use the cache: %+v", c.CacheStats())
	}
}
