// Controller telemetry: per-stage admission latency histograms,
// verdict counters, and a span per admission in the trace ring. The
// instrumentation rides the existing serialization — admissions run
// one at a time under c.mu, so the active span lives on the
// controller and stage helpers need no extra locking. A controller
// with no telemetry attached pays one nil check per stage.
package controller

import (
	"time"

	"github.com/in-net/innet/internal/telemetry"
)

// Admission stage names, as they appear in the
// innet_admission_stage_seconds{stage=...} histogram and in traces.
const (
	StageCanonicalize  = "canonicalize"
	StageCacheLookup   = "cache-lookup"
	StageSecurity      = "security-symexec"
	StagePolicyCheck   = "policy-check"
	StagePlacement     = "placement"
	StageJournalAppend = "journal-append"
)

// AdmissionStages lists every stage an admission trace can contain,
// in pipeline order.
var AdmissionStages = []string{
	StageCanonicalize, StageCacheLookup, StageSecurity,
	StagePolicyCheck, StagePlacement, StageJournalAppend,
}

// admissionTelemetry holds the pre-resolved metric handles so the
// admission path never takes the registry lock.
type admissionTelemetry struct {
	stages   map[string]*telemetry.Histogram
	admitted *telemetry.Counter
	rejected *telemetry.Counter
	total    *telemetry.Histogram
}

// AttachTelemetry wires a metrics registry and a trace ring into the
// controller. Either may be nil (that side stays dark). Call before
// serving requests; like AttachJournal, it is not meant to be flipped
// while admissions are in flight.
func (c *Controller) AttachTelemetry(r *telemetry.Registry, tr *telemetry.Tracer) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.tracer = tr
	if r == nil {
		return
	}
	tel := &admissionTelemetry{
		stages: make(map[string]*telemetry.Histogram, len(AdmissionStages)),
		admitted: r.Counter("innet_admission_verdicts_total",
			"Admission decisions by verdict.", "verdict", "admitted"),
		rejected: r.Counter("innet_admission_verdicts_total",
			"Admission decisions by verdict.", "verdict", "rejected"),
		total: r.Histogram("innet_admission_seconds",
			"End-to-end admission (Deploy) latency.", nil),
	}
	for _, st := range AdmissionStages {
		tel.stages[st] = r.Histogram("innet_admission_stage_seconds",
			"Admission pipeline stage latency.", nil, "stage", st)
	}
	c.tel = tel

	// Decision counters and the deployment gauge read controller state
	// under c.mu at scrape time; a scrape may briefly wait out an
	// in-flight admission, never the other way around.
	r.CounterFunc("innet_controller_placed_total",
		"Requests admitted and placed.",
		func() float64 { c.mu.Lock(); defer c.mu.Unlock(); return float64(c.Placed) })
	r.CounterFunc("innet_controller_rejections_total",
		"Requests rejected by admission.",
		func() float64 { c.mu.Lock(); defer c.mu.Unlock(); return float64(c.Rejections) })
	r.CounterFunc("innet_controller_migrations_total",
		"Deployments migrated off a failed platform.",
		func() float64 { c.mu.Lock(); defer c.mu.Unlock(); return float64(c.Migrations) })
	r.CounterFunc("innet_controller_failed_migrations_total",
		"Failovers that found no admissible alternate platform.",
		func() float64 { c.mu.Lock(); defer c.mu.Unlock(); return float64(c.FailedMigrations) })
	r.GaugeFunc("innet_controller_deployments",
		"Deployments currently recorded (all statuses).",
		func() float64 { c.mu.Lock(); defer c.mu.Unlock(); return float64(len(c.deployments)) })
	r.GaugeFunc("innet_pipeline_compiled_modules",
		"Live deployments whose config flattens into the compiled pipeline.",
		func() float64 { return float64(c.PipelineStatsSnapshot().Compiled) })
	r.GaugeFunc("innet_pipeline_fallback_modules",
		"Live deployments served by the graph-walk fallback.",
		func() float64 { return float64(c.PipelineStatsSnapshot().Fallback) })

	// The admission cache keeps its own thread-safe counters; bridge
	// them as callbacks (c.cache is immutable after construction and
	// Stats is nil-safe, so no c.mu here).
	r.CounterFunc("innet_admission_cache_hits_total",
		"Admission-cache verdict hits.",
		func() float64 { return float64(c.CacheStats().Hits) })
	r.CounterFunc("innet_admission_cache_misses_total",
		"Admission-cache verdict misses.",
		func() float64 { return float64(c.CacheStats().Misses) })
	r.CounterFunc("innet_admission_cache_evictions_total",
		"Admission-cache LRU evictions.",
		func() float64 { return float64(c.CacheStats().Evictions) })
	r.CounterFunc("innet_admission_cache_invalidations_total",
		"Admission-cache entries dropped on epoch change.",
		func() float64 { return float64(c.CacheStats().Invalidations) })

	// Same bridging for the per-element symexec memo (c.memo is
	// immutable after construction and Stats is nil-safe).
	r.CounterFunc("innet_admission_memo_hits_total",
		"Per-element symexec memo hits (element executions skipped).",
		func() float64 { return float64(c.MemoStats().Hits) })
	r.CounterFunc("innet_admission_memo_misses_total",
		"Per-element symexec memo misses.",
		func() float64 { return float64(c.MemoStats().Misses) })
	r.CounterFunc("innet_admission_memo_unsupported_total",
		"Element executions whose effects could not be captured as a recipe.",
		func() float64 { return float64(c.MemoStats().Unsupported) })
	r.CounterFunc("innet_admission_memo_evictions_total",
		"Per-element symexec memo LRU evictions.",
		func() float64 { return float64(c.MemoStats().Evictions) })
	r.GaugeFunc("innet_admission_memo_entries",
		"Per-element symexec memo resident entries.",
		func() float64 { return float64(c.MemoStats().Entries) })
}

// SetRecorder wires a flight recorder into the controller. Like
// AttachTelemetry it is meant to be called once, before serving.
func (c *Controller) SetRecorder(r *telemetry.Recorder) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.rec = r
}

// recordLocked appends one flight-recorder event. Caller holds c.mu;
// a controller with no recorder pays one nil check.
func (c *Controller) recordLocked(typ, detail, ref string) {
	if c.rec != nil {
		c.rec.Record(typ, "controller", detail, ref)
	}
}

// RegisterDrops contributes the controller's drop site to the unified
// drop-attribution hub: admission rejections are "drops" of whole
// deployment requests rather than packets, but they share the
// innet_drops_total{site,reason} surface so one query covers every
// place the system refuses work.
func (c *Controller) RegisterDrops(d *telemetry.Drops) {
	if d == nil {
		return
	}
	d.Source("admission", "rejected", func() uint64 {
		c.mu.Lock()
		defer c.mu.Unlock()
		return uint64(c.Rejections)
	})
}

// Tracer returns the attached trace ring (nil when tracing is off) so
// the API layer can serve /v1/traces without holding a second handle.
func (c *Controller) Tracer() *telemetry.Tracer {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.tracer
}

// stageLocked records one admission stage: a histogram sample and,
// when an admission span is open, a trace stage. Caller holds c.mu.
func (c *Controller) stageLocked(stage string, start time.Time, detail string) {
	d := time.Since(start)
	if c.tel != nil {
		if h := c.tel.stages[stage]; h != nil {
			h.Observe(d.Seconds())
		}
	}
	c.span.Stage(stage, d, detail) // nil-safe
}

// verdictLocked counts one admission decision. Caller holds c.mu.
func (c *Controller) verdictLocked(admitted bool) {
	if c.tel == nil {
		return
	}
	if admitted {
		c.tel.admitted.Inc()
	} else {
		c.tel.rejected.Inc()
	}
}

// beginSpanLocked opens the admission span for the request being
// handled; endSpanLocked commits it with a verdict. Caller holds c.mu.
func (c *Controller) beginSpanLocked(kind, id string) { c.span = c.tracer.Begin(kind, id) }

func (c *Controller) endSpanLocked(verdict string) {
	c.span.End(verdict)
	c.span = nil
}
