package controller

import (
	"errors"
	"fmt"
	"strings"
	"testing"
	"time"

	_ "github.com/in-net/innet/internal/elements"
	"github.com/in-net/innet/internal/journal"
	"github.com/in-net/innet/internal/security"
	"github.com/in-net/innet/internal/symexec"
	"github.com/in-net/innet/internal/topology"
)

const mirrorConfig = `
in :: FromNetfront();
f :: IPFilter(allow udp);
mir :: IPMirror();
out :: ToNetfront();
in -> f -> mir -> out;
`

// journaledController builds a fig3 controller backed by a store in a
// temp dir, returning both plus the dir for reopening.
func journaledController(t *testing.T) (*Controller, *journal.Store, string) {
	t.Helper()
	dir := t.TempDir()
	store, err := journal.Open(dir, journal.Options{Sync: journal.SyncNone})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { store.Close() })
	c := newController(t)
	c.AttachJournal(store)
	return c, store, dir
}

// restoreFrom reopens the state dir and rebuilds a controller.
func restoreFrom(t *testing.T, dir string, inv Inventory) (*Controller, *RecoveryReport, *journal.Store) {
	t.Helper()
	store, err := journal.Open(dir, journal.Options{Sync: journal.SyncNone})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { store.Close() })
	topo, err := topology.PaperFig3()
	if err != nil {
		t.Fatal(err)
	}
	c, rep, err := Restore(topo, operatorHTTPPolicy, Options{}, store.State(), inv, store)
	if err != nil {
		t.Fatal(err)
	}
	return c, rep, store
}

// depKey renders the deployment facts the acceptance criterion calls
// out: set membership, status and address allocation.
func depKey(d *Deployment) string {
	return fmt.Sprintf("%s tenant=%s module=%s platform=%s addr=%d sandboxed=%v status=%s",
		d.ID, d.Tenant, d.ModuleName, d.Platform, d.Addr, d.Sandboxed, d.Status())
}

func snapshotDeployments(c *Controller) []string {
	var out []string
	for _, d := range c.Deployments() {
		out = append(out, depKey(d))
	}
	return out
}

func TestRestoreRebuildsIdenticalState(t *testing.T) {
	c, _, dir := journaledController(t)
	// One deployment with tenant requirements (its name is referenced
	// by batcherRequirements, so it keeps the canonical name) plus
	// three requirement-free mirrors.
	if _, err := c.Deploy(batcherRequest()); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		req := Request{
			Tenant:     fmt.Sprintf("tenant%d", i),
			ModuleName: fmt.Sprintf("Mirror%d", i),
			Config:     mirrorConfig,
			Trust:      security.ThirdParty,
		}
		if _, err := c.Deploy(req); err != nil {
			t.Fatalf("deploy %d: %v", i, err)
		}
	}
	// A rejection and a kill must both survive in the counters.
	if _, err := c.Deploy(Request{Tenant: "x", ModuleName: "dup", Config: "nonsense("}); err == nil {
		t.Fatal("bad config deployed")
	}
	if err := c.Kill("pm-2"); err != nil {
		t.Fatal(err)
	}
	want := snapshotDeployments(c)

	rc, rep, _ := restoreFrom(t, dir, nil)
	got := snapshotDeployments(rc)
	if len(want) != len(got) {
		t.Fatalf("deployment sets differ: want %d, got %d", len(want), len(got))
	}
	for i := range want {
		if want[i] != got[i] {
			t.Errorf("deployment %d differs:\nwant %s\ngot  %s", i, want[i], got[i])
		}
	}
	if len(rep.Reattached) != 3 || len(rep.Replaced) != 0 || len(rep.Failed) != 0 {
		t.Errorf("recovery report: %+v", rep)
	}
	if rc.Placed != c.Placed || rc.Rejections != c.Rejections ||
		rc.Migrations != c.Migrations || rc.FailedMigrations != c.FailedMigrations {
		t.Errorf("counters differ: want %d/%d/%d/%d got %d/%d/%d/%d",
			c.Placed, c.Rejections, c.Migrations, c.FailedMigrations,
			rc.Placed, rc.Rejections, rc.Migrations, rc.FailedMigrations)
	}
	if _, ok := rc.Get("pm-2"); ok {
		t.Error("killed pm-2 resurrected by recovery")
	}
	// New deploys must not collide with recovered IDs.
	nd, err := rc.Deploy(Request{Tenant: "late", ModuleName: "late", Config: mirrorConfig, Trust: security.ThirdParty})
	if err != nil {
		t.Fatal(err)
	}
	if _, dup := c.Get(nd.ID); dup {
		t.Errorf("recovered controller reissued ID %s", nd.ID)
	}
}

// staticInventory says a fixed set of platform/addr pairs survived.
type staticInventory map[string]bool

func (si staticInventory) HasModule(platform string, addr uint32) bool {
	return si[fmt.Sprintf("%s/%d", platform, addr)]
}

func TestRestoreReplacesVanishedPlatform(t *testing.T) {
	c, _, dir := journaledController(t)
	d1, err := c.Deploy(Request{Tenant: "a", ModuleName: "m1", Config: mirrorConfig, Trust: security.ThirdParty})
	if err != nil {
		t.Fatal(err)
	}
	d2, err := c.Deploy(Request{Tenant: "b", ModuleName: "m2", Config: mirrorConfig, Trust: security.ThirdParty})
	if err != nil {
		t.Fatal(err)
	}

	// m1's platform vanished; m2 survived in place.
	inv := staticInventory{fmt.Sprintf("%s/%d", d2.Platform, d2.Addr): true}
	rc, rep, _ := restoreFrom(t, dir, inv)
	if len(rep.Replaced) != 1 || rep.Replaced[0] != d1.ID {
		t.Fatalf("recovery report: %+v", rep)
	}
	r1, ok := rc.Get(d1.ID)
	if !ok {
		t.Fatal("m1 lost")
	}
	if r1.Status() != StatusActive {
		t.Errorf("replaced m1 status = %s", r1.Status())
	}
	r2, _ := rc.Get(d2.ID)
	if r2 == nil || r2.Platform != d2.Platform || r2.Addr != d2.Addr {
		t.Errorf("re-attached m2 moved: %+v", r2)
	}
	// The re-placement must not collide with the re-attached module.
	if r1.Platform == r2.Platform && r1.Addr == r2.Addr {
		t.Errorf("recovery double-allocated %s addr %d", r1.Platform, r1.Addr)
	}
	if rc.Migrations != c.Migrations+1 {
		t.Errorf("Migrations = %d, want %d", rc.Migrations, c.Migrations+1)
	}
	// The re-placement was journaled: a second recovery round-trips.
	rc2, rep2, _ := restoreFrom(t, dir, nil)
	rr1, ok := rc2.Get(d1.ID)
	if !ok || rr1.Platform != r1.Platform || rr1.Addr != r1.Addr {
		t.Errorf("second recovery diverged: %+v", rr1)
	}
	if len(rep2.Replaced) != 0 {
		t.Errorf("second recovery re-placed again: %+v", rep2)
	}
}

func TestRecoveryReplacementHonorsRequirements(t *testing.T) {
	c, _, dir := journaledController(t)
	d, err := c.Deploy(batcherRequest())
	if err != nil {
		t.Fatal(err)
	}
	// §4.5: the Batcher's reach requirement only holds on Platform3 —
	// Platforms 1 and 2 are not reachable from the outside.
	if d.Platform != "Platform3" {
		t.Fatalf("batcher placed on %s, want Platform3", d.Platform)
	}

	// The module vanished from its platform. Recovery iterates the
	// platforms in order, so without re-running the placement-dependent
	// checks it would land the Batcher on Platform1, where its own
	// requirements (and thus the admission decision the client paid
	// for) do not hold.
	rc, rep, _ := restoreFrom(t, dir, staticInventory{})
	if len(rep.Replaced) != 1 || rep.Replaced[0] != d.ID {
		t.Fatalf("recovery report: %+v", rep)
	}
	rd, ok := rc.Get(d.ID)
	if !ok {
		t.Fatal("batcher lost")
	}
	if rd.Platform != "Platform3" {
		t.Errorf("recovery re-placed the batcher on %s, where its requirements do not hold; want Platform3", rd.Platform)
	}
	if rd.Status() != StatusActive {
		t.Errorf("status = %s, want active", rd.Status())
	}
}

func TestRestoreKeepsFailedFailed(t *testing.T) {
	c, _, dir := journaledController(t)
	d, err := c.Deploy(Request{Tenant: "a", ModuleName: "m1", Config: mirrorConfig, Trust: security.ThirdParty})
	if err != nil {
		t.Fatal(err)
	}
	// Every platform dies: failover has nowhere to go.
	for _, pl := range []string{"Platform1", "Platform2", "Platform3"} {
		c.MarkPlatformDown(pl)
	}
	_, failed := c.Failover(d.Platform)
	if len(failed) != 1 {
		t.Fatalf("failover failed set = %d, want 1", len(failed))
	}

	// Recovery must not silently resurrect it via placement-only
	// re-placement — failed deployments wait for RetryFailed's full
	// verification.
	rc, rep, _ := restoreFrom(t, dir, staticInventory{})
	if len(rep.Failed) != 1 {
		t.Fatalf("recovery report: %+v", rep)
	}
	rd, ok := rc.Get(d.ID)
	if !ok {
		t.Fatal("failed deployment dropped")
	}
	if rd.Status() != StatusFailed {
		t.Errorf("status = %s, want failed", rd.Status())
	}
	// Platform health survived too; bring one back and retry.
	health := rc.PlatformHealth()
	for pl, up := range health {
		if up {
			t.Errorf("platform %s recovered as up", pl)
		}
	}
	rc.MarkPlatformUp("Platform1")
	if rec := rc.RetryFailed(); len(rec) != 1 {
		t.Errorf("RetryFailed recovered %d, want 1", len(rec))
	}
}

func TestAdmissionBudgetRejectsNotHangs(t *testing.T) {
	topo, err := topology.PaperFig3()
	if err != nil {
		t.Fatal(err)
	}
	c, err := NewWithOptions(topo, "", Options{AdmissionSteps: 20})
	if err != nil {
		t.Fatal(err)
	}
	req := batcherRequest()
	start := time.Now()
	_, err = c.Deploy(req)
	if err == nil {
		t.Fatal("deploy succeeded under a 50-step budget")
	}
	var rej *RejectionError
	if !errors.As(err, &rej) {
		t.Fatalf("budget exhaustion is %T (%v), want *RejectionError", err, err)
	}
	if !strings.Contains(rej.Reason, "admission budget exceeded") {
		t.Errorf("reason = %q", rej.Reason)
	}
	if elapsed := time.Since(start); elapsed > 10*time.Second {
		t.Errorf("budgeted deploy took %v", elapsed)
	}
	if c.Rejections != 1 {
		t.Errorf("Rejections = %d", c.Rejections)
	}
	// ErrBudget must be detectable for API mapping.
	if !errors.Is(fmt.Errorf("wrap: %w", symexec.ErrBudget), symexec.ErrBudget) {
		t.Error("ErrBudget not wrappable")
	}
}

func TestQueryBudgetRejects(t *testing.T) {
	topo, err := topology.PaperFig3()
	if err != nil {
		t.Fatal(err)
	}
	c, err := NewWithOptions(topo, "", Options{AdmissionSteps: 2})
	if err != nil {
		t.Fatal(err)
	}
	_, err = c.Query("reach from internet tcp -> client")
	if err == nil {
		t.Skip("query finished inside 2 steps") // topology-dependent
	}
	var rej *RejectionError
	if !errors.As(err, &rej) {
		t.Fatalf("budget exhaustion is %T, want *RejectionError", err)
	}
}

func TestJournalAppendFailureBlocksAdmissionAndKill(t *testing.T) {
	c := newController(t)
	c.AttachJournal(failingJournal{})
	if _, err := c.Deploy(batcherRequest()); err == nil {
		t.Fatal("deploy succeeded with a failing journal")
	}
	if len(c.Deployments()) != 0 {
		t.Error("unjournaled deployment visible")
	}
}

type failingJournal struct{}

func (failingJournal) Append(journal.Record) error { return errors.New("disk full") }
