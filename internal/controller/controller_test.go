package controller

import (
	"strings"
	"testing"

	_ "github.com/in-net/innet/internal/elements"
	"github.com/in-net/innet/internal/packet"
	"github.com/in-net/innet/internal/security"
	"github.com/in-net/innet/internal/topology"
)

const batcherConfig = `
FromNetfront() ->
IPFilter(allow udp port 1500) ->
IPRewriter(pattern - - 10.1.15.133 - 0 0)
-> TimedUnqueue(120,100)
-> dst::ToNetfront()
`

const batcherRequirements = `
reach from internet udp
-> Batcher:dst:0 dst 10.1.15.133
-> client dst port 1500
const proto && dst port && payload
`

const operatorHTTPPolicy = `
reach from internet tcp src port 80 -> HTTPOptimizer -> client
`

func newController(t *testing.T) *Controller {
	t.Helper()
	topo, err := topology.PaperFig3()
	if err != nil {
		t.Fatal(err)
	}
	c, err := New(topo, operatorHTTPPolicy)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func batcherRequest() Request {
	return Request{
		Tenant:       "alice",
		ModuleName:   "Batcher",
		Config:       batcherConfig,
		Requirements: batcherRequirements,
		Trust:        security.Client,
	}
}

func TestDeployBatcherPicksPlatform3(t *testing.T) {
	c := newController(t)
	dep, err := c.Deploy(batcherRequest())
	if err != nil {
		t.Fatal(err)
	}
	// §4.5: "only Platform 3 applies, since Platforms 1 and 2 are not
	// reachable from the outside".
	if dep.Platform != "Platform3" {
		t.Errorf("platform = %s want Platform3", dep.Platform)
	}
	pool := packet.MustParsePrefix(topology.FixturePlatform3Pool)
	if !pool.Contains(dep.Addr) {
		t.Errorf("address %s not in Platform3 pool", packet.IPString(dep.Addr))
	}
	if dep.Sandboxed {
		t.Error("statically safe module should not be sandboxed")
	}
	if dep.Timings.Compile <= 0 || dep.Timings.Check <= 0 {
		t.Errorf("timings not recorded: %+v", dep.Timings)
	}
	if c.Placed != 1 {
		t.Errorf("Placed = %d", c.Placed)
	}
}

func TestDeployDuplicateRejected(t *testing.T) {
	c := newController(t)
	if _, err := c.Deploy(batcherRequest()); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Deploy(batcherRequest()); err == nil {
		t.Fatal("duplicate deploy accepted")
	}
}

func TestKillFreesName(t *testing.T) {
	c := newController(t)
	dep, err := c.Deploy(batcherRequest())
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Kill(dep.ID); err != nil {
		t.Fatal(err)
	}
	if err := c.Kill(dep.ID); err == nil {
		t.Error("double kill accepted")
	}
	if _, err := c.Deploy(batcherRequest()); err != nil {
		t.Errorf("redeploy after kill failed: %v", err)
	}
}

func TestDeployRejectsBadRequests(t *testing.T) {
	c := newController(t)
	cases := []Request{
		{},                // no name
		{ModuleName: "m"}, // no config
		{ModuleName: "m", Config: "x", Stock: StockGeoDNS}, // both
		{ModuleName: "m", Stock: "no-such-stock"},
		{ModuleName: "m", Config: "not click ::"},
		{ModuleName: "m", Config: batcherConfig, Whitelist: []string{"not-an-ip"}},
		{ModuleName: "m", Config: batcherConfig, Requirements: "gibberish"},
	}
	for i, req := range cases {
		if _, err := c.Deploy(req); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
}

func TestUnsatisfiableRequirementRejected(t *testing.T) {
	c := newController(t)
	req := batcherRequest()
	// The module only lets udp port 1500 through; requiring tcp at
	// the client cannot hold anywhere.
	req.Requirements = "reach from internet tcp -> Batcher:dst:0 -> client"
	_, err := c.Deploy(req)
	if err == nil {
		t.Fatal("unsatisfiable requirement accepted")
	}
	if _, ok := err.(*RejectionError); !ok {
		t.Errorf("error type %T", err)
	}
	if c.Rejections != 1 {
		t.Errorf("Rejections = %d", c.Rejections)
	}
}

func TestSpoofingModuleRejected(t *testing.T) {
	c := newController(t)
	_, err := c.Deploy(Request{
		Tenant: "mallory", ModuleName: "spoof", Trust: security.ThirdParty,
		Config: `
in :: FromNetfront();
sp :: SetIPSrc(203.0.113.66);
fwd :: SetIPDst(192.0.2.1);
out :: ToNetfront();
in -> sp -> fwd -> out;
`,
		Whitelist: []string{"192.0.2.1"},
	})
	if err == nil {
		t.Fatal("spoofing module deployed")
	}
	if !strings.Contains(err.Error(), "security") {
		t.Errorf("error = %v", err)
	}
}

func TestTunnelGetsSandboxed(t *testing.T) {
	c := newController(t)
	dep, err := c.Deploy(Request{
		Tenant: "bob", ModuleName: "tun", Trust: security.ThirdParty,
		Config: `
in :: FromNetfront();
dec :: IPDecap();
snat :: SetIPSrc($MODULE_IP);
out :: ToNetfront();
in -> dec -> snat -> out;
`,
		Whitelist: []string{"192.0.2.1"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !dep.Sandboxed {
		t.Error("tunnel should be sandboxed (Table 1)")
	}
	if !strings.Contains(dep.Config, packet.IPString(dep.Addr)) {
		t.Error("$MODULE_IP placeholder not substituted")
	}
	if !strings.Contains(dep.Config, "ChangeEnforcer") {
		t.Errorf("deployed config lacks the enforcer:\n%s", dep.Config)
	}
	if !strings.Contains(dep.Config, "192.0.2.1") {
		t.Error("enforcer not configured with the whitelist")
	}
}

func TestStockModulesDeploy(t *testing.T) {
	c := newController(t)
	for _, stock := range []string{StockReverseProxy, StockExplicitProxy, StockGeoDNS} {
		dep, err := c.Deploy(Request{
			Tenant: "carol", ModuleName: "stock-" + stock, Stock: stock,
			Trust: security.ThirdParty,
		})
		if err != nil {
			t.Errorf("%s: %v", stock, err)
			continue
		}
		if dep.Sandboxed {
			t.Errorf("%s: mirror-style stock modules are statically safe", stock)
		}
	}
	// The x86 VM stock module is always sandboxed.
	dep, err := c.Deploy(Request{
		Tenant: "carol", ModuleName: "legacy", Stock: StockX86VM,
		Trust: security.ThirdParty, Whitelist: []string{"192.0.2.1"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !dep.Sandboxed {
		t.Error("x86 VM must be sandboxed")
	}
}

func TestAddressAllocationDistinct(t *testing.T) {
	c := newController(t)
	seen := map[uint32]bool{}
	for i := 0; i < 5; i++ {
		req := batcherRequest()
		req.ModuleName = req.ModuleName + string(rune('A'+i))
		req.Requirements = strings.ReplaceAll(batcherRequirements, "Batcher", req.ModuleName)
		dep, err := c.Deploy(req)
		if err != nil {
			t.Fatal(err)
		}
		if seen[dep.Addr] {
			t.Fatalf("address %s reused", packet.IPString(dep.Addr))
		}
		seen[dep.Addr] = true
	}
	if got := len(c.Deployments()); got != 5 {
		t.Errorf("deployments = %d", got)
	}
}

func TestTransparentRequestOperatorOnly(t *testing.T) {
	c := newController(t)
	req := Request{
		Tenant: "dave", ModuleName: "router", Transparent: true,
		Trust: security.ThirdParty,
		Config: `
in :: FromNetfront();
rt :: LookupIPRoute(0.0.0.0/0 0);
out :: ToNetfront();
in -> rt -> out;
`,
	}
	if _, err := c.Deploy(req); err == nil {
		t.Fatal("third-party transparent module deployed")
	}
	req.Trust = security.Operator
	req.ModuleName = "router2"
	if _, err := c.Deploy(req); err != nil {
		t.Fatalf("operator transparent module rejected: %v", err)
	}
}

func TestOperatorPolicyStillHoldsAfterPlacement(t *testing.T) {
	// Any accepted placement must keep the HTTP-via-optimizer policy
	// intact; deploy several modules and re-verify via a fresh
	// controller compile.
	c := newController(t)
	if _, err := c.Deploy(batcherRequest()); err != nil {
		t.Fatal(err)
	}
	dep, err := c.Deploy(Request{
		Tenant: "erin", ModuleName: "dns", Stock: StockGeoDNS, Trust: security.ThirdParty,
	})
	if err != nil {
		t.Fatal(err)
	}
	if dep.Platform == "" {
		t.Error("no platform")
	}
}

func TestBadOperatorPolicyRejectedAtStartup(t *testing.T) {
	topo, err := topology.PaperFig3()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := New(topo, "this is not a requirement"); err == nil {
		t.Error("bad policy text accepted")
	}
	// A policy that does not hold on the base network fails fast.
	if _, err := New(topo, "reach from internet udp -> HTTPOptimizer -> client"); err == nil {
		t.Error("unsatisfiable base policy accepted")
	}
}

func TestSandboxConfigRewiring(t *testing.T) {
	src := `
in :: FromNetfront();
a :: Counter();
b :: Counter();
out :: ToNetfront();
in -> a -> b -> out;
`
	wrapped, err := SandboxConfig(src, []uint32{packet.MustParseIP("192.0.2.1")})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(wrapped, "ChangeEnforcer(whitelist 192.0.2.1)") {
		t.Errorf("wrapped:\n%s", wrapped)
	}
	// The wrapped config must build and keep the enforcer on both
	// paths.
	r, err := buildConfig(wrapped)
	if err != nil {
		t.Fatalf("wrapped config does not build: %v\n%s", err, wrapped)
	}
	if r.Element("__sandbox") == nil {
		t.Error("no sandbox element")
	}
	// Errors: multi-interface modules cannot be wrapped.
	multi := `
in0 :: FromNetfront(0);
in1 :: FromNetfront(1);
out :: ToNetfront();
in0 -> out;
`
	if _, err := SandboxConfig(multi, nil); err == nil {
		t.Error("multi-ingress module wrapped")
	}
	if _, err := SandboxConfig(`d :: Discard();`, nil); err == nil {
		t.Error("module without netfronts wrapped")
	}
	if _, err := SandboxConfig(`{{{`, nil); err == nil {
		t.Error("unparsable module wrapped")
	}
}

func BenchmarkDeployFig4(b *testing.B) {
	topo, err := topology.PaperFig3()
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c, err := New(topo, operatorHTTPPolicy)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := c.Deploy(batcherRequest()); err != nil {
			b.Fatal(err)
		}
	}
}
