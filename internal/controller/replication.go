// Controller-side replication support: role state (single, leader,
// standby), leader-only gating of mutating operations, the idempotent
// deploy path clients retry against after a failover, and the standby
// catch-up apply that folds replicated journal records into a warm
// in-memory replica without re-journaling them.
package controller

import (
	"errors"
	"fmt"

	"github.com/in-net/innet/internal/journal"
)

// Role is the controller's replication role.
type Role int32

const (
	// RoleSingle is the unreplicated default: one controller owns the
	// journal and serves everything.
	RoleSingle Role = iota
	// RoleLeader owns admissions and ships journal frames to standbys.
	RoleLeader
	// RoleStandby applies replicated records and serves reads only;
	// mutating operations return ErrNotLeader. A deposed (fenced)
	// ex-leader is also set to RoleStandby.
	RoleStandby
)

func (r Role) String() string {
	switch r {
	case RoleLeader:
		return "leader"
	case RoleStandby:
		return "standby"
	default:
		return "single"
	}
}

// ParseRole maps flag values to roles.
func ParseRole(s string) (Role, error) {
	switch s {
	case "single", "":
		return RoleSingle, nil
	case "leader":
		return RoleLeader, nil
	case "standby":
		return RoleStandby, nil
	default:
		return 0, fmt.Errorf("controller: unknown role %q (want single, leader or standby)", s)
	}
}

// ErrNotLeader is returned by mutating operations on a standby (or
// fenced ex-leader) controller. The API layer translates it into a
// redirect to the current leader.
var ErrNotLeader = errors.New("controller: not the leader")

// SetRole flips the controller's replication role. The replication
// node calls it on promotion (standby→leader) and fencing
// (leader→standby).
func (c *Controller) SetRole(r Role) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.role = r
}

// Role returns the controller's replication role.
func (c *Controller) Role() Role {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.role
}

// leaderOnlyLocked rejects mutations on a standby controller.
func (c *Controller) leaderOnlyLocked() error {
	if c.role == RoleStandby {
		return ErrNotLeader
	}
	return nil
}

// syncJournal is the replication node's journal facade: AppendSync
// blocks until the record is durable on the standbys too, so an
// admission acked to a client can never be lost by a leader crash.
type syncJournal interface {
	AppendSync(journal.Record) error
}

// appendSyncLocked journals a strict (write-ahead) record. When the
// attached journal is a replication node it waits for standby
// acknowledgement; otherwise it is a plain append.
func (c *Controller) appendSyncLocked(r journal.Record) error {
	if c.journal == nil {
		return nil
	}
	r.NextID = c.nextID
	if sj, ok := c.journal.(syncJournal); ok {
		return sj.AppendSync(r)
	}
	return c.journal.Append(r)
}

// sameRequest reports whether two deployment requests are
// byte-identical — the retry-equality test behind DeployIdempotent.
func sameRequest(a, b Request) bool {
	if a.Tenant != b.Tenant || a.ModuleName != b.ModuleName ||
		a.Config != b.Config || a.Stock != b.Stock ||
		a.Requirements != b.Requirements || a.Trust != b.Trust ||
		a.Transparent != b.Transparent || a.TraceEvery != b.TraceEvery ||
		len(a.Whitelist) != len(b.Whitelist) {
		return false
	}
	for i := range a.Whitelist {
		if a.Whitelist[i] != b.Whitelist[i] {
			return false
		}
	}
	return true
}

// DeployIdempotent is Deploy for clients that may be retrying after a
// failover: when an identical request (same tenant, module and full
// request body) is already deployed, the existing deployment is
// returned with reused=true instead of a duplicate-module rejection.
// This resolves the client's ambiguity after a leader crash — whether
// the admission replicated before the crash or not, the retry against
// the new leader converges on exactly one deployment. A *different*
// request under an existing (tenant, module) name still rejects.
func (c *Controller) DeployIdempotent(req Request) (*Deployment, bool, error) {
	return c.deploy(req, true)
}

// ApplyRecord folds one replicated journal record into the live
// controller — the standby catch-up path. The record has already been
// ingested into the standby's journal store, so nothing is
// re-journaled here; this mirrors exactly the in-memory transition the
// leader made when it appended the record. Deployments are rebuilt
// with deploymentFromRecord (no symbolic re-analysis — the leader's
// admission already paid for it, and the verdict travels with the
// record).
func (c *Controller) ApplyRecord(r journal.Record) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if r.NextID > c.nextID {
		c.nextID = r.NextID
	}
	switch r.Type {
	case journal.EvAdmit:
		d, err := deploymentFromRecord(r.Dep)
		if err != nil {
			return err
		}
		c.deployments[d.ID] = d
		c.bumpEpochLocked()
		c.Placed++
	case journal.EvMigrate:
		d, err := deploymentFromRecord(r.Dep)
		if err != nil {
			return err
		}
		c.deployments[d.ID] = d
		c.bumpEpochLocked()
		c.Migrations++
	case journal.EvMigrateFailed:
		if d, ok := c.deployments[r.ID]; ok {
			d.setStatus(StatusFailed)
			c.bumpEpochLocked()
		}
		c.FailedMigrations++
	case journal.EvReject:
		c.Rejections++
	case journal.EvStatus:
		if d, ok := c.deployments[r.ID]; ok {
			d.setStatus(parseStatus(r.Status))
		}
	case journal.EvKill:
		delete(c.deployments, r.ID)
		c.bumpEpochLocked()
	case journal.EvPlatformDown:
		c.platformDown[r.Platform] = true
		c.bumpEpochLocked()
		for _, d := range c.deployments {
			if d.Platform == r.Platform && d.Status() == StatusActive {
				d.setStatus(StatusDegraded)
			}
		}
	case journal.EvPlatformUp:
		delete(c.platformDown, r.Platform)
		c.bumpEpochLocked()
		for _, d := range c.deployments {
			if d.Platform == r.Platform && d.Status() == StatusDegraded {
				d.setStatus(StatusActive)
			}
		}
	case journal.EvTerm:
		// Leadership bookkeeping lives in the journal state; nothing
		// changes in the deployment set.
	}
	return nil
}

// ResetToState discards the controller's in-memory deployment set and
// rebuilds it from a folded journal state — the standby snapshot
// resync path (the journal-store side is Store.ResetTo). Like restart
// recovery's re-attach pass this runs no placement and journals
// nothing; unlike Restore it reuses the live controller so the
// topology, policy and caches survive.
func (c *Controller) ResetToState(st *journal.State) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	deployments := make(map[string]*Deployment, len(st.Deployments))
	for _, id := range st.IDs() {
		d, err := deploymentFromRecord(st.Deployments[id])
		if err != nil {
			return err
		}
		deployments[id] = d
	}
	c.deployments = deployments
	c.nextID = st.NextID
	c.Placed = st.Placed
	c.Rejections = st.Rejections
	c.Migrations = st.Migrations
	c.FailedMigrations = st.FailedMigrations
	c.platformDown = make(map[string]bool)
	for name, down := range st.PlatformDown {
		if down {
			c.platformDown[name] = true
		}
	}
	c.bumpEpochLocked()
	return nil
}
