package controller

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"github.com/in-net/innet/internal/click"
	"github.com/in-net/innet/internal/clicklang"
	_ "github.com/in-net/innet/internal/elements"
	"github.com/in-net/innet/internal/packet"
	"github.com/in-net/innet/internal/security"
	"github.com/in-net/innet/internal/symexec"
	"github.com/in-net/innet/internal/topology"
)

// The parallel/memoized differential battery: AdmissionWorkers and
// the per-element memo are pure performance knobs — every observable
// admission artifact (security reports down to reason ordering and
// finding order, placement verdicts, query answers, rejection text)
// must be byte-identical to a sequential, memo-free run. The battery
// replays (a) the full Table 1 corpus, (b) seeded random Click
// configurations and (c) the scripted admission sequence from
// differential_test.go across worker counts {1, 2, 8}, with the memo
// cold, warm and combined with parallelism, and diffs the rendered
// outputs. Run with -race: the worker pool and shared memo are
// exercised on every case.

// reportString renders every field of a security report so any
// divergence — verdict, reason order, finding order, detail text —
// breaks byte equality.
func reportString(rep *security.Report) string {
	return fmt.Sprintf("%#v", *rep)
}

// checkWith runs one security check with the given worker count and
// memo.
func checkWith(t *testing.T, label string, in security.Input, workers int, memo *symexec.Memo) *security.Report {
	t.Helper()
	in.Workers = workers
	in.Memo = memo
	rep, err := security.Check(in)
	if err != nil {
		t.Fatalf("%s: %v", label, err)
	}
	return rep
}

// diffVariants checks one module's report across all parallel/memo
// variants against the sequential reference. The memo is shared by
// the caller so warm runs replay recipes captured by earlier cases.
func diffVariants(t *testing.T, label string, in security.Input, memo *symexec.Memo) {
	t.Helper()
	want := reportString(checkWith(t, label+"/seq", in, 1, nil))
	for _, workers := range []int{2, 8} {
		if got := reportString(checkWith(t, fmt.Sprintf("%s/w%d", label, workers), in, workers, nil)); got != want {
			t.Errorf("%s: workers=%d diverges from sequential:\nseq:  %s\ngot:  %s", label, workers, want, got)
		}
	}
	for _, v := range []struct {
		name    string
		workers int
	}{{"memo-cold", 1}, {"memo-warm", 1}, {"memo-parallel", 8}} {
		if got := reportString(checkWith(t, label+"/"+v.name, in, v.workers, memo)); got != want {
			t.Errorf("%s: %s diverges from sequential:\nseq:  %s\ngot:  %s", label, v.name, want, got)
		}
	}
}

// table1Input mirrors security.CheckTable1Row but leaves Workers/Memo
// to the battery.
func table1Input(row security.Table1Row, trust security.TrustClass) security.Input {
	var mod *click.Router
	if row.Config != "" {
		mod = click.MustBuildString(row.Config)
	}
	return security.Input{
		ModuleID: "t1",
		Module:   mod,
		Addr:     packet.MustParseIP(security.Table1ModuleAddr),
		Trust:    trust,
		Whitelist: []uint32{
			packet.MustParseIP(security.Table1TenantServer),
			packet.MustParseIP(security.Table1TenantServer2),
		},
		Transparent: row.Transparent,
	}
}

func TestTable1ParallelDifferential(t *testing.T) {
	memo := symexec.NewMemo(symexec.DefaultMemoEntries)
	memo.SetCostGate(false) // keep the hit assertion timing-independent
	trusts := []security.TrustClass{security.ThirdParty, security.Client, security.Operator}
	for _, row := range security.Table1() {
		for _, trust := range trusts {
			diffVariants(t, fmt.Sprintf("%s/%s", row.Functionality, trust), table1Input(row, trust), memo)
		}
	}
	// The corpus repeats structure heavily (shared firewall/mirror
	// prefixes across rows, and every row runs five memoized
	// variants): the memo must actually have short-circuited work, or
	// this battery proves nothing about replay.
	if st := memo.Stats(); st.Hits == 0 {
		t.Errorf("memo never hit across the Table 1 battery: %+v", st)
	}
}

// genClickConfig emits a random linear chain (optionally ending in a
// Tee fan-out) over the element vocabulary the admission path sees in
// practice: filters, rewriters, meters, mirrors. Every generated
// config builds; verdict variety comes from whitelisted vs foreign
// destinations and filter/mirror composition.
func genClickConfig(rng *rand.Rand) string {
	ips := []string{"192.0.2.1", "192.0.2.2", "203.0.113.9"}
	protos := []string{"tcp", "udp"}
	ip := func() string { return ips[rng.Intn(len(ips))] }
	var b strings.Builder
	b.WriteString("in :: FromNetfront();\n")
	prev := "in"
	n := 1 + rng.Intn(4)
	for i := 0; i < n; i++ {
		name := fmt.Sprintf("e%d", i)
		var class string
		switch rng.Intn(8) {
		case 0:
			class = fmt.Sprintf("IPFilter(allow %s dst port %d)", protos[rng.Intn(2)], 1+rng.Intn(2000))
		case 1:
			class = fmt.Sprintf("IPFilter(allow %s port %d, deny all)", protos[rng.Intn(2)], 1+rng.Intn(2000))
		case 2:
			class = fmt.Sprintf("SetIPDst(%s)", ip())
		case 3:
			class = "FlowMeter()"
		case 4:
			class = fmt.Sprintf("RateLimiter(%d)", 100+rng.Intn(900))
		case 5:
			class = "IPMirror()"
		case 6:
			class = fmt.Sprintf("IPRewriter(pattern - - %s - 0 0)", ip())
		case 7:
			class = fmt.Sprintf("SetDstPort(%d)", 1+rng.Intn(2000))
		}
		fmt.Fprintf(&b, "%s :: %s;\n%s -> %s;\n", name, class, prev, name)
		prev = name
	}
	if rng.Intn(3) == 0 {
		fmt.Fprintf(&b, "t :: Tee(2);\nd0 :: SetIPDst(%s);\nd1 :: SetIPDst(%s);\n", ip(), ip())
		fmt.Fprintf(&b, "out0 :: ToNetfront(0);\nout1 :: ToNetfront(1);\n")
		fmt.Fprintf(&b, "%s -> t;\nt[0] -> d0 -> out0;\nt[1] -> d1 -> out1;\n", prev)
	} else {
		fmt.Fprintf(&b, "out :: ToNetfront();\n%s -> out;\n", prev)
	}
	return b.String()
}

// TestQuickRandomConfigParallelDifferential drives the same variant
// diff over randomly generated configurations. testing/quick supplies
// the per-case seeds from a fixed source, so a failure report's seed
// value replays the exact configuration.
func TestQuickRandomConfigParallelDifferential(t *testing.T) {
	memo := symexec.NewMemo(symexec.DefaultMemoEntries)
	memo.SetCostGate(false) // keep the hit assertion timing-independent
	property := func(seed uint64) bool {
		rng := rand.New(rand.NewSource(int64(seed)))
		src := genClickConfig(rng)
		cfg, err := clicklang.Parse(src)
		if err != nil {
			t.Fatalf("seed %d: generated config does not parse:\n%s\n%v", seed, src, err)
		}
		mod, err := click.Build(cfg)
		if err != nil {
			t.Fatalf("seed %d: generated config does not build:\n%s\n%v", seed, src, err)
		}
		trust := security.ThirdParty
		if seed%2 == 0 {
			trust = security.Client
		}
		in := security.Input{
			ModuleID: "rnd",
			Module:   mod,
			Addr:     packet.MustParseIP(security.Table1ModuleAddr),
			Trust:    trust,
			Whitelist: []uint32{
				packet.MustParseIP(security.Table1TenantServer),
				packet.MustParseIP(security.Table1TenantServer2),
			},
		}
		diffVariants(t, fmt.Sprintf("seed-%d", seed), in, memo)
		return !t.Failed()
	}
	cfg := &quick.Config{MaxCount: 25, Rand: rand.New(rand.NewSource(0x1ee7))}
	if err := quick.Check(property, cfg); err != nil {
		t.Fatal(err)
	}
	if st := memo.Stats(); st.Hits == 0 {
		t.Errorf("memo never hit across the random battery: %+v", st)
	}
}

// TestParallelAdmissionScriptDifferential replays the full scripted
// admission sequence (deploys, policy/security rejections, queries,
// kills, re-deploys) through controllers with every combination of
// worker count, memo and invalidation mode, and requires each
// transcript — including a warm second pass — to match the
// sequential, memo-free, delta-free baseline byte for byte.
func TestParallelAdmissionScriptDifferential(t *testing.T) {
	newCtl := func(opts Options) *Controller {
		t.Helper()
		topo, err := topology.PaperFig3()
		if err != nil {
			t.Fatal(err)
		}
		c, err := NewWithOptions(topo, operatorHTTPPolicy, opts)
		if err != nil {
			t.Fatal(err)
		}
		// The cost gate drops timing-cheap elements from the memo; the
		// hit assertions below need memoization to be deterministic.
		c.memo.SetCostGate(false)
		return c
	}
	baseline := newCtl(Options{AdmissionWorkers: -1, ElementMemo: -1, AdmissionCache: -1, WholesaleInvalidation: true})
	base := admissionScript(baseline)

	variants := []struct {
		name string
		opts Options
	}{
		{"workers=1", Options{AdmissionWorkers: 1, ElementMemo: -1}},
		{"workers=2", Options{AdmissionWorkers: 2, ElementMemo: -1}},
		{"workers=8", Options{AdmissionWorkers: 8, ElementMemo: -1}},
		{"workers=8+memo", Options{AdmissionWorkers: 8}},
		{"workers=8+memo+wholesale", Options{AdmissionWorkers: 8, WholesaleInvalidation: true}},
		{"default", Options{}},
	}
	for _, v := range variants {
		c := newCtl(v.opts)
		if got := admissionScript(c); got != base {
			t.Errorf("%s cold pass diverges from sequential baseline:\n--- baseline ---\n%s--- %s ---\n%s", v.name, base, v.name, got)
		}
		if got := admissionScript(c); got != base {
			t.Errorf("%s warm pass diverges from sequential baseline:\n--- baseline ---\n%s--- %s ---\n%s", v.name, base, v.name, got)
		}
		if v.opts.ElementMemo == 0 {
			if st := c.MemoStats(); st.Hits == 0 {
				t.Errorf("%s: element memo never hit: %+v", v.name, st)
			}
		}
	}
}
