// Controller persistence and restart recovery: the controller
// journals every deployment lifecycle transition (admit, reject,
// migrate, kill, platform health) through the Journal interface, and
// Restore rebuilds a controller from the folded journal state —
// re-attaching to platforms that still report the module and
// re-running the placement step (platform choice plus the
// placement-dependent requirement and policy checks, but never the
// security symbolic execution, which the journal already paid for)
// for deployments whose platform vanished.
package controller

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"github.com/in-net/innet/internal/journal"
	"github.com/in-net/innet/internal/packet"
	"github.com/in-net/innet/internal/policy"
	"github.com/in-net/innet/internal/security"
	"github.com/in-net/innet/internal/topology"
)

// Journal receives one record per controller state transition.
// *journal.Store implements it; nil disables persistence. Admission
// and kill records are write-ahead (the operation fails if the append
// does); the rest are best-effort with the first failure remembered
// by JournalErr.
type Journal interface {
	Append(journal.Record) error
}

// AttachJournal wires a journal sink into the controller. Call it
// before serving requests; transitions before attachment are lost.
func (c *Controller) AttachJournal(j Journal) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.journal = j
}

// JournalErr reports the first best-effort journal append that
// failed (nil on a healthy journal).
func (c *Controller) JournalErr() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.journalErr
}

// appendLocked journals one record, stamping the ID counter so a
// recovered controller never reissues a deployment ID.
func (c *Controller) appendLocked(r journal.Record) error {
	if c.journal == nil {
		return nil
	}
	r.NextID = c.nextID
	return c.journal.Append(r)
}

// journalBestEffortLocked appends a record, remembering the first
// failure instead of failing the state transition: dropping a status
// flip is recoverable (recovery re-derives health from platforms),
// losing an admission or kill is not — those use appendLocked
// directly and propagate.
func (c *Controller) journalBestEffortLocked(r journal.Record) {
	if err := c.appendLocked(r); err != nil && c.journalErr == nil {
		c.journalErr = err
	}
}

// depRecord renders a deployment as its journal record.
func depRecord(d *Deployment) *journal.DeploymentRecord {
	return &journal.DeploymentRecord{
		ID:              d.ID,
		Tenant:          d.Tenant,
		ModuleName:      d.ModuleName,
		Platform:        d.Platform,
		Addr:            d.Addr,
		Sandboxed:       d.Sandboxed,
		Verdict:         verdictName(d.Security),
		Config:          d.Config,
		Status:          d.Status().String(),
		ReqConfig:       d.req.Config,
		ReqStock:        d.req.Stock,
		ReqRequirements: d.req.Requirements,
		Trust:           int(d.req.Trust),
		Whitelist:       append([]string(nil), d.req.Whitelist...),
		Transparent:     d.req.Transparent,
		ReqTraceEvery:   d.req.TraceEvery,
	}
}

func verdictName(rep *security.Report) string {
	if rep == nil {
		return ""
	}
	return rep.Verdict.String()
}

// recoveredReport synthesizes a minimal security report for a
// deployment rebuilt from the journal: the verdict survives, the
// per-flow findings do not (they were advisory; the admission-time
// decision — sandbox or not — is baked into the deployed config).
func recoveredReport(verdict string) *security.Report {
	rep := &security.Report{Reasons: []string{"recovered from journal"}}
	if verdict == security.NeedsSandbox.String() {
		rep.Verdict = security.NeedsSandbox
	}
	return rep
}

func parseStatus(s string) DeploymentStatus {
	switch s {
	case journal.StatusDegraded:
		return StatusDegraded
	case journal.StatusFailed:
		return StatusFailed
	default:
		return StatusActive
	}
}

// requestFromRecord rebuilds the original deployment request.
func requestFromRecord(rec *journal.DeploymentRecord) Request {
	return Request{
		Tenant:       rec.Tenant,
		ModuleName:   rec.ModuleName,
		Config:       rec.ReqConfig,
		Stock:        rec.ReqStock,
		Requirements: rec.ReqRequirements,
		Trust:        security.TrustClass(rec.Trust),
		Whitelist:    append([]string(nil), rec.Whitelist...),
		Transparent:  rec.Transparent,
		TraceEvery:   rec.ReqTraceEvery,
	}
}

// deploymentFromRecord rebuilds a deployment exactly as journaled:
// same platform, address and deployed config. Only the Click build
// runs — no symbolic analysis.
func deploymentFromRecord(rec *journal.DeploymentRecord) (*Deployment, error) {
	router, err := buildConfig(rec.Config)
	if err != nil {
		return nil, fmt.Errorf("controller: recover %s: journaled config does not build: %v", rec.ID, err)
	}
	d := &Deployment{
		ID:         rec.ID,
		Tenant:     rec.Tenant,
		ModuleName: rec.ModuleName,
		Platform:   rec.Platform,
		Addr:       rec.Addr,
		Sandboxed:  rec.Sandboxed,
		Security:   recoveredReport(rec.Verdict),
		Config:     rec.Config,
		req:        requestFromRecord(rec),
		module: topology.HostedModule{
			ID: rec.ModuleName, Platform: rec.Platform, Addr: rec.Addr, Router: router,
		},
	}
	d.setStatus(parseStatus(rec.Status))
	d.classifyPipeline()
	return d, nil
}

// recoverPlaceLocked re-runs the placement step for a journaled
// deployment whose platform vanished: pick a healthy platform with a
// free address, substitute $MODULE_IP, re-apply the admission-time
// sandbox decision and build the config. The placement-dependent
// checks — client requirements and operator policy, which tryPlatform
// verifies per platform against the tentative topology — ARE re-run,
// so recovery cannot land a module where the static checks would have
// refused it. Only the security symbolic execution is skipped: its
// verdict does not depend on where the module is placed, and the
// journal records it already passed (the sandbox decision travels
// with the record).
func (c *Controller) recoverPlaceLocked(rec *journal.DeploymentRecord) (*Deployment, error) {
	req := requestFromRecord(rec)
	src, isVM, err := resolveConfig(req)
	if err != nil {
		return nil, err
	}
	var whitelist []uint32
	for _, w := range rec.Whitelist {
		ip, perr := packet.ParseIP(w)
		if perr != nil {
			return nil, fmt.Errorf("controller: recover %s: bad whitelist address %q", rec.ID, w)
		}
		whitelist = append(whitelist, ip)
	}
	var reqs []*policy.Requirement
	if strings.TrimSpace(req.Requirements) != "" {
		reqs, err = policy.ParseAll(req.Requirements)
		if err != nil {
			return nil, fmt.Errorf("controller: recover %s: bad requirements: %v", rec.ID, err)
		}
	}
	steps, deadline := c.opts.admissionBudget()
	var lastReason string
	for _, pl := range c.topo.Platforms() {
		if c.platformDown[pl] {
			lastReason = fmt.Sprintf("platform %s is down", pl)
			continue
		}
		addr, ok := c.allocAddrLocked(pl)
		if !ok {
			lastReason = fmt.Sprintf("platform %s address pool exhausted", pl)
			continue
		}
		deploySrc := strings.ReplaceAll(src, "$MODULE_IP", packet.IPString(addr))
		switch {
		case isVM:
			deploySrc, err = SandboxConfig(StockModules[StockReverseProxy], whitelist)
		case rec.Sandboxed:
			deploySrc, err = SandboxConfig(deploySrc, whitelist)
		}
		if err != nil {
			return nil, fmt.Errorf("controller: recover %s: %v", rec.ID, err)
		}
		router, berr := buildConfig(deploySrc)
		if berr != nil {
			return nil, fmt.Errorf("controller: recover %s: %v", rec.ID, berr)
		}
		hosted := topology.HostedModule{
			ID: rec.ModuleName, Platform: pl, Addr: addr, Router: router,
		}
		net, nm, cerr := c.topo.Compile(c.hostedLocked(&hosted))
		if cerr != nil {
			lastReason = fmt.Sprintf("platform %s: %v", pl, cerr)
			continue
		}
		env := &policy.CheckEnv{
			Net: net, Map: nm, ClientNet: c.topo.ClientNet,
			MaxSteps: steps, Deadline: deadline,
		}
		pkey := placementKey(pl, addr, deploySrc, req.Requirements, steps)
		reason, cherr := c.checkPlacementLocked(pl, reqs, env, pkey)
		if cherr != nil {
			return nil, fmt.Errorf("controller: recover %s: %v", rec.ID, budgetRejection(cherr))
		}
		if reason != "" {
			lastReason = reason
			continue
		}
		d := &Deployment{
			ID:         rec.ID,
			Tenant:     rec.Tenant,
			ModuleName: rec.ModuleName,
			Platform:   pl,
			Addr:       addr,
			Sandboxed:  rec.Sandboxed,
			Security:   recoveredReport(rec.Verdict),
			Config:     deploySrc,
			req:        req,
			module:     hosted,
		}
		d.setStatus(StatusActive)
		d.classifyPipeline()
		return d, nil
	}
	if lastReason == "" {
		lastReason = "no platform available for recovery placement"
	}
	return nil, &RejectionError{Reason: lastReason}
}

// Inventory answers, during recovery, whether a platform still
// reports a module at an address — the re-attach probe. A nil
// Inventory re-attaches everything as journaled.
type Inventory interface {
	HasModule(platform string, addr uint32) bool
}

// RecoveryReport summarizes one Restore (IDs sorted).
type RecoveryReport struct {
	// Reattached deployments were found intact on their journaled
	// platform and rebuilt in place.
	Reattached []string
	// Replaced deployments lost their platform and were re-placed
	// (placement step only) on a healthy one.
	Replaced []string
	// Failed deployments could not be re-placed (or were journaled
	// as failed); they are kept with StatusFailed for RetryFailed.
	Failed []string
	// Elapsed is the total recovery time.
	Elapsed time.Duration
}

// Restore rebuilds a controller from journaled state. The topology
// and operator policy are NOT persisted — they are configuration, and
// must be supplied exactly as on the original boot (the base-network
// policy check still runs). Deployments journaled as failed stay
// failed (only the full RetryFailed pipeline may bring them back);
// everything else is re-attached or re-placed per the Inventory. j
// (usually the same *journal.Store the state came from) is attached
// to the new controller, and re-placements are journaled through it
// before Restore returns.
func Restore(topo *topology.Topology, operatorPolicy string, opts Options, st *journal.State, inv Inventory, j Journal) (*Controller, *RecoveryReport, error) {
	start := time.Now()
	c, err := NewWithOptions(topo, operatorPolicy, opts)
	if err != nil {
		return nil, nil, err
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.journal = j
	c.nextID = st.NextID
	c.Placed = st.Placed
	c.Rejections = st.Rejections
	c.Migrations = st.Migrations
	c.FailedMigrations = st.FailedMigrations
	for name, down := range st.PlatformDown {
		if down {
			c.platformDown[name] = true
		}
	}

	report := &RecoveryReport{}
	// Pass 1: re-attach everything still present, so its addresses
	// are occupied before any re-placement allocates.
	var vanished []string
	for _, id := range st.IDs() {
		rec := st.Deployments[id]
		if rec.Status == journal.StatusFailed {
			d, derr := deploymentFromRecord(rec)
			if derr != nil {
				return nil, nil, derr
			}
			c.deployments[id] = d
			c.bumpEpochLocked()
			report.Failed = append(report.Failed, id)
			continue
		}
		if inv != nil && !inv.HasModule(rec.Platform, rec.Addr) {
			vanished = append(vanished, id)
			continue
		}
		d, derr := deploymentFromRecord(rec)
		if derr != nil {
			return nil, nil, derr
		}
		c.deployments[id] = d
		c.bumpEpochLocked()
		report.Reattached = append(report.Reattached, id)
	}
	// Pass 2: placement-only recovery for vanished platforms.
	for _, id := range vanished {
		rec := st.Deployments[id]
		d, perr := c.recoverPlaceLocked(rec)
		if perr != nil {
			// Keep the deployment, failed: capacity may return.
			d2, derr := deploymentFromRecord(rec)
			if derr != nil {
				return nil, nil, derr
			}
			d2.setStatus(StatusFailed)
			c.deployments[id] = d2
			c.bumpEpochLocked()
			c.FailedMigrations++
			c.journalBestEffortLocked(journal.Record{Type: journal.EvMigrateFailed, ID: id, Reason: perr.Error()})
			report.Failed = append(report.Failed, id)
			continue
		}
		c.deployments[id] = d
		c.bumpEpochLocked()
		c.Migrations++
		c.journalBestEffortLocked(journal.Record{Type: journal.EvMigrate, Dep: depRecord(d)})
		report.Replaced = append(report.Replaced, id)
	}
	sort.Strings(report.Failed)
	report.Elapsed = time.Since(start)
	return c, report, nil
}
