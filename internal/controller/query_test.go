package controller

import (
	"strings"
	"testing"

	"github.com/in-net/innet/internal/netsim"
	"github.com/in-net/innet/internal/packet"
	"github.com/in-net/innet/internal/platform"
	"github.com/in-net/innet/internal/security"
	"github.com/in-net/innet/internal/topology"
)

func newSim() *netsim.Sim { return netsim.New(1) }

func TestQueryReachability(t *testing.T) {
	c := newController(t)
	// UDP reachability from a client to the Internet holds on Fig. 3.
	res, err := c.Query("reach from client udp -> internet")
	if err != nil {
		t.Fatal(err)
	}
	if !res.Satisfied {
		t.Errorf("udp out: %s", res.Reason)
	}
	if res.Timings.Compile <= 0 || res.Timings.Check <= 0 {
		t.Error("timings not recorded")
	}
	// Forcing UDP through the HTTP optimizer cannot hold.
	res2, err := c.Query("reach from internet udp -> HTTPOptimizer -> client")
	if err != nil {
		t.Fatal(err)
	}
	if res2.Satisfied {
		t.Error("impossible requirement satisfied")
	}
	if res2.Reason == "" {
		t.Error("no reason on failure")
	}
}

func TestQuerySeesDeployedModules(t *testing.T) {
	c := newController(t)
	// Before deployment, nothing answers at the batcher.
	if _, err := c.Query("reach from internet udp -> Batcher:dst:0 -> client"); err == nil {
		t.Error("query against unknown module should error")
	}
	if _, err := c.Deploy(batcherRequest()); err != nil {
		t.Fatal(err)
	}
	res, err := c.Query("reach from internet udp -> Batcher:dst:0 -> client")
	if err != nil {
		t.Fatal(err)
	}
	if !res.Satisfied {
		t.Errorf("deployed module unreachable: %s", res.Reason)
	}
}

func TestAmplificationOptionSandboxesUDPResponders(t *testing.T) {
	topo, err := topology.PaperFig3()
	if err != nil {
		t.Fatal(err)
	}
	c, err := NewWithOptions(topo, "", Options{BanConnectionlessReplies: true})
	if err != nil {
		t.Fatal(err)
	}
	dep, err := c.Deploy(Request{
		Tenant: "dns-co", ModuleName: "dns", Stock: StockGeoDNS,
		Trust: security.ThirdParty, Whitelist: []string{"192.0.2.1"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !dep.Sandboxed {
		t.Error("udp responder should be sandboxed under the amplification policy")
	}
	// The TCP reverse proxy remains sandbox-free.
	dep2, err := c.Deploy(Request{
		Tenant: "dns-co", ModuleName: "rp", Stock: StockReverseProxy,
		Trust: security.ThirdParty, Whitelist: []string{"192.0.2.1"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if dep2.Sandboxed {
		t.Error("tcp responder needlessly sandboxed")
	}
}

func TestAddressPoolExhaustion(t *testing.T) {
	// A platform with a /30 pool has two usable module addresses;
	// the third deployment must be refused with a pool-exhausted
	// reason, and killing one frees an address.
	topo := topology.New("tiny", mustPrefix(t, "10.1.0.0/16"))
	if err := topo.AddEndpoint("internet"); err != nil {
		t.Fatal(err)
	}
	if err := topo.AddEndpoint("client"); err != nil {
		t.Fatal(err)
	}
	if err := topo.AddRouter("r1",
		topology.RouteTo("198.51.100.0/30", 1),
		topology.RouteTo("10.1.0.0/16", 2),
		topology.RouteTo("0.0.0.0/0", 0)); err != nil {
		t.Fatal(err)
	}
	if err := topo.AddPlatform("p", mustPrefix(t, "198.51.100.0/30"), "r1", 0); err != nil {
		t.Fatal(err)
	}
	must := func(err error) {
		if err != nil {
			t.Fatal(err)
		}
	}
	must(topo.Connect("internet", 0, "r1", 0))
	must(topo.Connect("r1", 0, "internet", 0))
	must(topo.Connect("r1", 1, "p", 0))
	must(topo.Connect("p", 0, "r1", 1))
	must(topo.Connect("r1", 2, "client", 0))
	must(topo.Connect("client", 0, "r1", 0))
	c, err := New(topo, "")
	if err != nil {
		t.Fatal(err)
	}
	deploy := func(name string) (*Deployment, error) {
		return c.Deploy(Request{
			Tenant: "t", ModuleName: name, Trust: security.ThirdParty,
			Whitelist: []string{"192.0.2.1"},
			Config: `
in :: FromNetfront();
fwd :: SetIPDst(192.0.2.1);
out :: ToNetfront();
in -> fwd -> out;
`,
		})
	}
	d1, err := deploy("a")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := deploy("b"); err != nil {
		t.Fatal(err)
	}
	if _, err := deploy("c"); err == nil {
		t.Fatal("third module fit in a /30 pool")
	} else if !strings.Contains(err.Error(), "exhausted") {
		t.Errorf("error = %v", err)
	}
	// Freeing an address admits a new module.
	if err := c.Kill(d1.ID); err != nil {
		t.Fatal(err)
	}
	if _, err := deploy("d"); err != nil {
		t.Errorf("deploy after kill: %v", err)
	}
}

func mustPrefix(t *testing.T, s string) packet.Prefix {
	t.Helper()
	return packet.MustParsePrefix(s)
}

func TestQueryBadInput(t *testing.T) {
	c := newController(t)
	if _, err := c.Query("nonsense"); err == nil {
		t.Error("bad requirements accepted")
	}
}

func TestStatefulDetection(t *testing.T) {
	c := newController(t)
	dep, err := c.Deploy(batcherRequest())
	if err != nil {
		t.Fatal(err)
	}
	// The batcher holds buffered packets (TimedUnqueue): stateful.
	if !dep.Stateful() {
		t.Error("batcher should be stateful")
	}
	spec := dep.PlatformSpec()
	if spec.Addr != dep.Addr || !spec.Stateful || spec.Kind != platform.ClickOS {
		t.Errorf("spec = %+v", spec)
	}
	if !strings.Contains(spec.Config, "TimedUnqueue") {
		t.Error("spec config lost the batcher")
	}
	// A stateless firewall module.
	dep2, err := c.Deploy(Request{
		Tenant: "bob", ModuleName: "fw", Trust: security.ThirdParty,
		Whitelist: []string{"192.0.2.1"},
		Config: `
in :: FromNetfront();
f :: IPFilter(allow udp, deny all);
fwd :: SetIPDst(192.0.2.1);
out :: ToNetfront();
in -> f -> fwd -> out;
`,
	})
	if err != nil {
		t.Fatal(err)
	}
	if dep2.Stateful() {
		t.Error("stateless firewall flagged stateful")
	}
}

func TestDeployedPlatformSpecRegisters(t *testing.T) {
	// The control-plane output must be directly consumable by the
	// platform simulator.
	c := newController(t)
	dep, err := c.Deploy(batcherRequest())
	if err != nil {
		t.Fatal(err)
	}
	sim := newSim()
	p := platform.New(sim, platform.DefaultModel(), 1024)
	if err := p.Register(dep.PlatformSpec()); err != nil {
		t.Fatalf("platform rejected the deployed spec: %v", err)
	}
}
