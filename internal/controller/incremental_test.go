package controller

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	_ "github.com/in-net/innet/internal/elements"
	"github.com/in-net/innet/internal/packet"
	"github.com/in-net/innet/internal/security"
	"github.com/in-net/innet/internal/topology"
)

// Epoch-delta invalidation must be an invisible optimization: a
// controller validating cached placement/query entries against
// per-platform dependency digests has to hand out exactly the
// verdicts of one that throws every placement-dependent entry away on
// any topology mutation. TestQuickIncrementalEquivalence drives
// seeded random mutation sequences — deploys, kills, outages,
// recoveries, failovers, queries — through a delta and a wholesale
// controller in lockstep and diffs the full transcripts; the quick
// seed in a failure report replays the exact sequence.
// TestDeltaSurvivesOutage pins the headline win directly: a platform
// health flip costs the wholesale controller its warm entries but not
// the delta controller.

func newModeController(t *testing.T, wholesale bool) *Controller {
	t.Helper()
	topo, err := topology.PaperFig3()
	if err != nil {
		t.Fatal(err)
	}
	c, err := NewWithOptions(topo, operatorHTTPPolicy, Options{WholesaleInvalidation: wholesale})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestDeltaSurvivesOutage(t *testing.T) {
	run := func(wholesale bool) (warmHit bool) {
		c := newModeController(t, wholesale)
		if _, err := c.Deploy(batcherRequest()); err != nil {
			t.Fatal(err)
		}
		if _, err := c.Query(batcherRequirements); err != nil { // populate
			t.Fatal(err)
		}
		// A health flip mutates no deployed module set, so delta
		// entries must survive it; the wholesale epoch includes the
		// down-set and cannot. (One-way flip: the content-derived
		// epoch would return to its old value after down+up.)
		c.MarkPlatformDown("Platform1")
		before := c.CacheStats().Hits
		if _, err := c.Query(batcherRequirements); err != nil {
			t.Fatal(err)
		}
		return c.CacheStats().Hits > before
	}
	if run(true) {
		t.Error("wholesale mode answered from cache across an epoch bump (test premise broken)")
	}
	if !run(false) {
		t.Error("delta mode re-verified a query no mutation touched")
	}
}

// mutationScript drives one seeded op sequence against a controller
// and renders every outcome (IDs excluded: the counter is shared
// across both controllers' histories by design, but op outcomes are
// keyed by name).
func mutationScript(c *Controller, seed uint64, ops int) string {
	rng := rand.New(rand.NewSource(int64(seed)))
	platforms := []string{"Platform1", "Platform2", "Platform3"}
	names := []string{"Batcher", "mirror", "spoof"}
	queries := []string{
		batcherRequirements,
		operatorHTTPPolicy,
		"reach from internet tcp -> Batcher:dst:0 -> client",
	}
	request := func(name string) Request {
		switch name {
		case "Batcher":
			return batcherRequest()
		case "mirror":
			return Request{
				Tenant: "bob", ModuleName: "mirror", Trust: security.ThirdParty,
				Config: `
in :: FromNetfront();
f :: IPFilter(allow tcp dst port 80);
mir :: IPMirror();
out :: ToNetfront();
in -> f -> mir -> out;
`,
			}
		default:
			return Request{
				Tenant: "mallory", ModuleName: "spoof", Trust: security.ThirdParty,
				Config: spoofConfig, Whitelist: []string{"192.0.2.1"},
			}
		}
	}

	var b strings.Builder
	byName := func(name string) *Deployment {
		for _, d := range c.Deployments() {
			if d.ModuleName == name {
				return d
			}
		}
		return nil
	}
	for i := 0; i < ops; i++ {
		switch rng.Intn(6) {
		case 0, 1: // deploy (weighted: mutations need material)
			name := names[rng.Intn(len(names))]
			dep, err := c.Deploy(request(name))
			if err != nil {
				fmt.Fprintf(&b, "%d deploy %s: err %v\n", i, name, err)
				break
			}
			fmt.Fprintf(&b, "%d deploy %s: ok platform=%s addr=%s sandboxed=%t verdict=%v reasons=%q\n",
				i, name, dep.Platform, packet.IPString(dep.Addr), dep.Sandboxed,
				dep.Security.Verdict, dep.Security.Reasons)
		case 2: // kill
			name := names[rng.Intn(len(names))]
			if d := byName(name); d != nil {
				fmt.Fprintf(&b, "%d kill %s: %v\n", i, name, c.Kill(d.ID))
			} else {
				fmt.Fprintf(&b, "%d kill %s: absent\n", i, name)
			}
		case 3: // outage + failover
			pf := platforms[rng.Intn(len(platforms))]
			affected := c.MarkPlatformDown(pf)
			migrated, failed := c.Failover(pf)
			fmt.Fprintf(&b, "%d down %s: affected=%d migrated=%d failed=%d\n",
				i, pf, len(affected), len(migrated), len(failed))
		case 4: // recovery
			pf := platforms[rng.Intn(len(platforms))]
			c.MarkPlatformUp(pf)
			retried := c.RetryFailed()
			fmt.Fprintf(&b, "%d up %s: retried=%d\n", i, pf, len(retried))
		case 5: // query
			q := queries[rng.Intn(len(queries))]
			res, err := c.Query(q)
			if err != nil {
				fmt.Fprintf(&b, "%d query: err %v\n", i, err)
				break
			}
			fmt.Fprintf(&b, "%d query: satisfied=%t reason=%q\n", i, res.Satisfied, res.Reason)
		}
	}
	// Closing census: surviving deployments with full placement state.
	for _, d := range c.Deployments() {
		fmt.Fprintf(&b, "final %s: platform=%s addr=%s status=%v sandboxed=%t\n",
			d.ModuleName, d.Platform, packet.IPString(d.Addr), d.Status(), d.Sandboxed)
	}
	return b.String()
}

func TestQuickIncrementalEquivalence(t *testing.T) {
	property := func(seed uint64) bool {
		delta := newModeController(t, false)
		wholesale := newModeController(t, true)
		got := mutationScript(delta, seed, 14)
		want := mutationScript(wholesale, seed, 14)
		if got != want {
			t.Errorf("seed %d: delta transcript diverges from wholesale:\n--- wholesale ---\n%s--- delta ---\n%s", seed, want, got)
			return false
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 12, Rand: rand.New(rand.NewSource(0xde17a))}
	if err := quick.Check(property, cfg); err != nil {
		t.Fatal(err)
	}
}
