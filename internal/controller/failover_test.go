package controller

import (
	"testing"

	"github.com/in-net/innet/internal/security"
)

func dnsRequest(name string) Request {
	return Request{
		Tenant: "erin", ModuleName: name, Stock: StockGeoDNS,
		Trust: security.ThirdParty,
	}
}

func TestStatusLifecycleStrings(t *testing.T) {
	cases := map[DeploymentStatus]string{
		StatusActive: "active", StatusDegraded: "degraded",
		StatusMigrating: "migrating", StatusFailed: "failed",
		DeploymentStatus(99): "unknown",
	}
	for s, want := range cases {
		if s.String() != want {
			t.Errorf("%d.String() = %q, want %q", s, s.String(), want)
		}
	}
}

func TestMarkPlatformDownDegradesHostedDeployments(t *testing.T) {
	c := newController(t)
	dep, err := c.Deploy(dnsRequest("dns"))
	if err != nil {
		t.Fatal(err)
	}
	if dep.Status() != StatusActive {
		t.Fatalf("fresh deployment status = %s", dep.Status())
	}
	affected := c.MarkPlatformDown(dep.Platform)
	if len(affected) != 1 || affected[0].ID != dep.ID {
		t.Fatalf("affected = %v", affected)
	}
	if dep.Status() != StatusDegraded {
		t.Errorf("status = %s, want degraded", dep.Status())
	}
	if h := c.PlatformHealth(); h[dep.Platform] {
		t.Error("platform still healthy in health map")
	}
	c.MarkPlatformUp(dep.Platform)
	if dep.Status() != StatusActive {
		t.Errorf("status = %s after recovery", dep.Status())
	}
}

func TestFailoverMigratesPreservingID(t *testing.T) {
	c := newController(t)
	dep, err := c.Deploy(dnsRequest("dns"))
	if err != nil {
		t.Fatal(err)
	}
	from := dep.Platform
	c.MarkPlatformDown(from)
	migrated, failed := c.Failover(from)
	if len(failed) != 0 {
		t.Fatalf("failed = %v", failed)
	}
	if len(migrated) != 1 {
		t.Fatalf("migrated = %d", len(migrated))
	}
	m := migrated[0]
	if m.From.ID != dep.ID || m.To.ID != dep.ID {
		t.Errorf("ID changed across failover: %s -> %s", m.From.ID, m.To.ID)
	}
	if m.To.Platform == from {
		t.Errorf("re-placed on the down platform %s", from)
	}
	if m.To.Addr == m.From.Addr {
		t.Error("address not re-allocated from the new platform's pool")
	}
	nd, ok := c.Get(dep.ID)
	if !ok || nd != m.To {
		t.Error("deployments map not updated to the new placement")
	}
	if nd.Status() != StatusActive {
		t.Errorf("migrated status = %s", nd.Status())
	}
	if c.Migrations != 1 {
		t.Errorf("Migrations = %d", c.Migrations)
	}
}

func TestFailoverReverifiesAndFailsWhenNoSafeAlternate(t *testing.T) {
	c := newController(t)
	// Batcher's requirements only hold on Platform3 (§4.5), so its
	// failover must find no verified alternate.
	dep, err := c.Deploy(batcherRequest())
	if err != nil {
		t.Fatal(err)
	}
	c.MarkPlatformDown(dep.Platform)
	migrated, failed := c.Failover(dep.Platform)
	if len(migrated) != 0 {
		t.Fatalf("migrated = %v; policy verification should refuse alternates", migrated)
	}
	if len(failed) != 1 || failed[0].ID != dep.ID {
		t.Fatalf("failed = %v", failed)
	}
	if failed[0].Status() != StatusFailed {
		t.Errorf("status = %s", failed[0].Status())
	}
	if c.FailedMigrations != 1 {
		t.Errorf("FailedMigrations = %d", c.FailedMigrations)
	}
	// The failed deployment keeps its ID (visible, diagnosable) but no
	// longer counts as hosted on any platform.
	if got, ok := c.Get(dep.ID); !ok || got.Status() != StatusFailed {
		t.Error("failed deployment lost from the map")
	}
}

func TestDeploySkipsDownPlatforms(t *testing.T) {
	c := newController(t)
	d1, err := c.Deploy(dnsRequest("dns1"))
	if err != nil {
		t.Fatal(err)
	}
	c.MarkPlatformDown(d1.Platform)
	d2, err := c.Deploy(dnsRequest("dns2"))
	if err != nil {
		t.Fatal(err)
	}
	if d2.Platform == d1.Platform {
		t.Errorf("new deployment placed on down platform %s", d2.Platform)
	}
	c.MarkPlatformUp(d1.Platform)
	d3, err := c.Deploy(dnsRequest("dns3"))
	if err != nil {
		t.Fatal(err)
	}
	if d3.Platform != d1.Platform {
		t.Errorf("recovered platform %s not used again (got %s)", d1.Platform, d3.Platform)
	}
}

func TestRetryFailedRecoversWhenPlatformReturns(t *testing.T) {
	c := newController(t)
	dep, err := c.Deploy(batcherRequest())
	if err != nil {
		t.Fatal(err)
	}
	home := dep.Platform
	c.MarkPlatformDown(home)
	c.Failover(home) // no alternate -> StatusFailed
	c.MarkPlatformUp(home)
	recovered := c.RetryFailed()
	if len(recovered) != 1 || recovered[0].ID != dep.ID {
		t.Fatalf("recovered = %v", recovered)
	}
	nd, _ := c.Get(dep.ID)
	if nd.Status() != StatusActive || nd.Platform != home {
		t.Errorf("status=%s platform=%s after retry", nd.Status(), nd.Platform)
	}
}

func TestFailoverOfHealthyPlatformMovesNothing(t *testing.T) {
	c := newController(t)
	if _, err := c.Deploy(dnsRequest("dns")); err != nil {
		t.Fatal(err)
	}
	// Failover of a platform hosting nothing is a no-op.
	migrated, failed := c.Failover("Platform3")
	if len(migrated) != 0 || len(failed) != 0 {
		t.Errorf("migrated=%v failed=%v", migrated, failed)
	}
}
