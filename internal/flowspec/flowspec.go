// Package flowspec implements the tcpdump-style flow specification
// language the In-Net API uses to constrain traffic (paper §4.2):
//
//	udp
//	tcp src port 80
//	dst 172.16.15.133 and dst port 1500
//	udp and not dst net 10.0.0.0/8
//	(tcp or udp) and dst portrange 5000-6000
//
// Juxtaposition means conjunction, as in tcpdump ("udp dst port 7").
// A parsed Spec can be evaluated both over concrete packets (the
// dataplane, IPFilter) and over symbolic states (the controller's
// static checking) — the same language serves both planes, which is
// the crux of the In-Net API.
package flowspec

import (
	"fmt"
	"strconv"
	"strings"

	"github.com/in-net/innet/internal/packet"
	"github.com/in-net/innet/internal/symexec"
)

// Expr is a flow predicate in negation normal form: And/Or over
// atomic interval constraints.
type Expr interface {
	// Match evaluates the predicate over a concrete packet.
	Match(p *packet.Packet) bool
	// Refine applies the predicate to a symbolic state. It consumes s
	// (possibly mutating it) and returns the refined, satisfiable
	// flows; an empty result means the predicate is unsatisfiable
	// under s's constraints.
	Refine(s *symexec.State) []*symexec.State
	String() string
}

// Atom constrains one field to an interval set.
type Atom struct {
	Field symexec.Field
	Set   symexec.IntervalSet
}

// Match implements Expr.
func (a Atom) Match(p *packet.Packet) bool {
	v, ok := FieldOf(p, a.Field)
	return ok && a.Set.Contains(v)
}

// Refine implements Expr.
func (a Atom) Refine(s *symexec.State) []*symexec.State {
	if !s.Constrain(a.Field, a.Set) {
		return nil
	}
	return []*symexec.State{s}
}

func (a Atom) String() string {
	return fmt.Sprintf("%s in %s", a.Field, a.Set)
}

// And is conjunction.
type And struct{ L, R Expr }

// Match implements Expr.
func (e And) Match(p *packet.Packet) bool { return e.L.Match(p) && e.R.Match(p) }

// Refine implements Expr.
func (e And) Refine(s *symexec.State) []*symexec.State {
	var out []*symexec.State
	for _, l := range e.L.Refine(s) {
		out = append(out, e.R.Refine(l)...)
	}
	return out
}

func (e And) String() string { return "(" + e.L.String() + " and " + e.R.String() + ")" }

// Or is disjunction.
type Or struct{ L, R Expr }

// Match implements Expr.
func (e Or) Match(p *packet.Packet) bool { return e.L.Match(p) || e.R.Match(p) }

// Refine implements Expr.
func (e Or) Refine(s *symexec.State) []*symexec.State {
	l := e.L.Refine(s.Clone())
	r := e.R.Refine(s)
	return append(l, r...)
}

func (e Or) String() string { return "(" + e.L.String() + " or " + e.R.String() + ")" }

// True matches everything (the spec "ip" or an absent flow spec).
type True struct{}

// Match implements Expr.
func (True) Match(p *packet.Packet) bool { return true }

// Refine implements Expr.
func (True) Refine(s *symexec.State) []*symexec.State { return []*symexec.State{s} }

func (True) String() string { return "ip" }

// Spec is a parsed flow specification.
type Spec struct {
	Expr Expr
	// Source is the original text.
	Source string
}

// Match evaluates the spec over a concrete packet.
func (s *Spec) Match(p *packet.Packet) bool { return s.Expr.Match(p) }

// Refine applies the spec to a symbolic state (consuming it).
func (s *Spec) Refine(st *symexec.State) []*symexec.State { return s.Expr.Refine(st) }

// Satisfiable reports whether some concrete packet satisfies both the
// spec and the state's current constraints.
func (s *Spec) Satisfiable(st *symexec.State) bool {
	return len(s.Expr.Refine(st.Clone())) > 0
}

func (s *Spec) String() string {
	if s.Source != "" {
		return s.Source
	}
	return s.Expr.String()
}

// MatchAll is the spec that matches all IP traffic.
func MatchAll() *Spec { return &Spec{Expr: True{}, Source: "ip"} }

// Negated returns the logical complement of the spec (in negation
// normal form). Filters use it to refine the "rule did not match"
// fall-through branch during symbolic execution.
func (s *Spec) Negated() (*Spec, error) {
	e, err := negate(s.Expr)
	if err != nil {
		return nil, err
	}
	return &Spec{Expr: e, Source: "not (" + s.String() + ")"}, nil
}

// FieldOf extracts a symbolic field's concrete value from a packet.
// ok is false for fields with no concrete projection (payload).
func FieldOf(p *packet.Packet, f symexec.Field) (uint64, bool) {
	switch f {
	case symexec.FieldSrcIP:
		return uint64(p.SrcIP), true
	case symexec.FieldDstIP:
		return uint64(p.DstIP), true
	case symexec.FieldProto:
		return uint64(p.Protocol), true
	case symexec.FieldSrcPort:
		return uint64(p.SrcPort), true
	case symexec.FieldDstPort:
		return uint64(p.DstPort), true
	case symexec.FieldTTL:
		return uint64(p.TTL), true
	case symexec.FieldTOS:
		return uint64(p.TOS), true
	case symexec.FieldPaint:
		return uint64(p.Paint), true
	case symexec.FieldFWTag:
		return uint64(p.FlowTag), true
	default:
		return 0, false
	}
}

// FieldByName maps requirement-language field names ("proto",
// "src port", "dst", "payload", ...) to symbolic fields.
func FieldByName(name string) (symexec.Field, error) {
	switch strings.Join(strings.Fields(strings.ToLower(name)), " ") {
	case "proto", "protocol":
		return symexec.FieldProto, nil
	case "src", "src host", "ip src":
		return symexec.FieldSrcIP, nil
	case "dst", "dst host", "ip dst":
		return symexec.FieldDstIP, nil
	case "src port":
		return symexec.FieldSrcPort, nil
	case "dst port":
		return symexec.FieldDstPort, nil
	case "ttl":
		return symexec.FieldTTL, nil
	case "tos":
		return symexec.FieldTOS, nil
	case "payload", "data":
		return symexec.FieldPayload, nil
	default:
		return "", fmt.Errorf("flowspec: unknown field %q", name)
	}
}

// ParseFieldList parses a "const" field list such as
// "proto && dst port && payload" (the paper's Fig. 4) into fields.
// Both "&&" and "," separators are accepted.
func ParseFieldList(src string) ([]symexec.Field, error) {
	src = strings.ReplaceAll(src, "&&", ",")
	var out []symexec.Field
	for _, part := range strings.Split(src, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		f, err := FieldByName(part)
		if err != nil {
			return nil, err
		}
		out = append(out, f)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("flowspec: empty field list")
	}
	return out, nil
}

// ---- Parser ----

type parser struct {
	toks []string
	pos  int
	src  string
}

// Parse parses a tcpdump-style flow specification. An empty or
// all-whitespace input yields MatchAll.
func Parse(src string) (*Spec, error) {
	toks := tokenize(src)
	if len(toks) == 0 {
		return MatchAll(), nil
	}
	p := &parser{toks: toks, src: src}
	e, err := p.parseOr()
	if err != nil {
		return nil, err
	}
	if p.pos != len(p.toks) {
		return nil, p.errf("trailing tokens from %q", p.toks[p.pos])
	}
	return &Spec{Expr: e, Source: strings.TrimSpace(src)}, nil
}

// MustParse is Parse that panics on error.
func MustParse(src string) *Spec {
	s, err := Parse(src)
	if err != nil {
		panic(err)
	}
	return s
}

func tokenize(src string) []string {
	src = strings.ReplaceAll(src, "(", " ( ")
	src = strings.ReplaceAll(src, ")", " ) ")
	return strings.Fields(src)
}

func (p *parser) errf(format string, args ...any) error {
	return fmt.Errorf("flowspec: %q: %s", p.src, fmt.Sprintf(format, args...))
}

func (p *parser) peek() string {
	if p.pos < len(p.toks) {
		return strings.ToLower(p.toks[p.pos])
	}
	return ""
}

func (p *parser) take() string {
	t := p.peek()
	if t != "" {
		p.pos++
	}
	return t
}

func (p *parser) parseOr() (Expr, error) {
	l, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for p.peek() == "or" || p.peek() == "||" {
		p.take()
		r, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		l = Or{L: l, R: r}
	}
	return l, nil
}

// parseAnd handles explicit "and" and tcpdump-style juxtaposition.
func (p *parser) parseAnd() (Expr, error) {
	l, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for {
		t := p.peek()
		switch {
		case t == "and" || t == "&&":
			p.take()
		case t == "" || t == "or" || t == "||" || t == ")":
			return l, nil
		}
		r, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		l = And{L: l, R: r}
	}
}

func (p *parser) parseUnary() (Expr, error) {
	switch p.peek() {
	case "not", "!":
		p.take()
		e, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return negate(e)
	case "(":
		p.take()
		e, err := p.parseOr()
		if err != nil {
			return nil, err
		}
		if p.take() != ")" {
			return nil, p.errf("missing ')'")
		}
		return e, nil
	default:
		return p.parsePrimitive()
	}
}

// negate pushes negation down to atoms (NNF), so that symbolic
// refinement never needs general complement of compound predicates.
func negate(e Expr) (Expr, error) {
	switch v := e.(type) {
	case Atom:
		return Atom{Field: v.Field, Set: v.Set.Complement(v.Field.Width())}, nil
	case And:
		l, err := negate(v.L)
		if err != nil {
			return nil, err
		}
		r, err := negate(v.R)
		if err != nil {
			return nil, err
		}
		return Or{L: l, R: r}, nil
	case Or:
		l, err := negate(v.L)
		if err != nil {
			return nil, err
		}
		r, err := negate(v.R)
		if err != nil {
			return nil, err
		}
		return And{L: l, R: r}, nil
	case True:
		// "not ip" is unsatisfiable; represent as empty proto set.
		return Atom{Field: symexec.FieldProto, Set: symexec.Empty}, nil
	default:
		return nil, fmt.Errorf("flowspec: cannot negate %T", e)
	}
}

func protoNumber(name string) (uint64, bool) {
	switch name {
	case "icmp":
		return uint64(packet.ProtoICMP), true
	case "tcp":
		return uint64(packet.ProtoTCP), true
	case "udp":
		return uint64(packet.ProtoUDP), true
	case "sctp":
		return uint64(packet.ProtoSCTP), true
	}
	return 0, false
}

func (p *parser) parsePrimitive() (Expr, error) {
	t := p.take()
	if t == "" {
		return nil, p.errf("unexpected end of input")
	}
	if n, ok := protoNumber(t); ok {
		return Atom{Field: symexec.FieldProto, Set: symexec.Single(n)}, nil
	}
	switch t {
	case "ip", "all", "any":
		return True{}, nil
	case "src", "dst":
		return p.parseDirected(t)
	case "host":
		return p.parseHost("")
	case "net":
		return p.parseNet("")
	case "port":
		return p.parsePort("", false)
	case "portrange":
		return p.parsePort("", true)
	case "proto":
		// "proto 132"
		num := p.take()
		n, err := strconv.ParseUint(num, 10, 8)
		if err != nil {
			return nil, p.errf("bad protocol number %q", num)
		}
		return Atom{Field: symexec.FieldProto, Set: symexec.Single(n)}, nil
	default:
		// Bare IPv4 address or CIDR means host/net match on either
		// direction.
		if strings.Contains(t, "/") {
			return p.netExpr("", t)
		}
		if _, err := packet.ParseIP(t); err == nil {
			return p.hostExpr("", t)
		}
		return nil, p.errf("unknown primitive %q", t)
	}
}

// parseDirected handles "src ..."/"dst ..." prefixed primitives,
// including the paper's shorthand "dst 172.16.15.133".
func (p *parser) parseDirected(dir string) (Expr, error) {
	switch p.peek() {
	case "host":
		p.take()
		return p.parseHost(dir)
	case "net":
		p.take()
		return p.parseNet(dir)
	case "port":
		p.take()
		return p.parsePort(dir, false)
	case "portrange":
		p.take()
		return p.parsePort(dir, true)
	default:
		// "src <addr>" / "dst <addr[/len]>".
		t := p.take()
		if t == "" {
			return nil, p.errf("%s: missing operand", dir)
		}
		if strings.Contains(t, "/") {
			return p.netExpr(dir, t)
		}
		return p.hostExpr(dir, t)
	}
}

func (p *parser) parseHost(dir string) (Expr, error) {
	t := p.take()
	if t == "" {
		return nil, p.errf("host: missing address")
	}
	return p.hostExpr(dir, t)
}

func (p *parser) hostExpr(dir, addr string) (Expr, error) {
	ip, err := packet.ParseIP(addr)
	if err != nil {
		return nil, p.errf("bad address %q", addr)
	}
	set := symexec.Single(uint64(ip))
	return directional(dir, symexec.FieldSrcIP, symexec.FieldDstIP, set), nil
}

func (p *parser) parseNet(dir string) (Expr, error) {
	t := p.take()
	if t == "" {
		return nil, p.errf("net: missing prefix")
	}
	// Allow "net 10.0.0.0 mask 255.0.0.0"? Keep CIDR only.
	return p.netExpr(dir, t)
}

func (p *parser) netExpr(dir, cidr string) (Expr, error) {
	pf, err := packet.ParsePrefix(cidr)
	if err != nil {
		return nil, p.errf("bad prefix %q", cidr)
	}
	lo, hi := pf.Range()
	set := symexec.Span(uint64(lo), uint64(hi))
	return directional(dir, symexec.FieldSrcIP, symexec.FieldDstIP, set), nil
}

func (p *parser) parsePort(dir string, isRange bool) (Expr, error) {
	t := p.take()
	if t == "" {
		return nil, p.errf("port: missing number")
	}
	var set symexec.IntervalSet
	if isRange || strings.Contains(t, "-") {
		lohi := strings.SplitN(t, "-", 2)
		if len(lohi) != 2 {
			return nil, p.errf("bad port range %q", t)
		}
		lo, err1 := strconv.ParseUint(lohi[0], 10, 16)
		hi, err2 := strconv.ParseUint(lohi[1], 10, 16)
		if err1 != nil || err2 != nil || lo > hi {
			return nil, p.errf("bad port range %q", t)
		}
		set = symexec.Span(lo, hi)
	} else {
		n, err := strconv.ParseUint(t, 10, 16)
		if err != nil {
			return nil, p.errf("bad port %q", t)
		}
		set = symexec.Single(n)
	}
	return directional(dir, symexec.FieldSrcPort, symexec.FieldDstPort, set), nil
}

// directional builds src-field, dst-field or src-or-dst atoms.
func directional(dir string, srcF, dstF symexec.Field, set symexec.IntervalSet) Expr {
	switch dir {
	case "src":
		return Atom{Field: srcF, Set: set}
	case "dst":
		return Atom{Field: dstF, Set: set}
	default:
		return Or{L: Atom{Field: srcF, Set: set}, R: Atom{Field: dstF, Set: set}}
	}
}
