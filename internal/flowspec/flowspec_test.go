package flowspec

import (
	"testing"

	"github.com/in-net/innet/internal/packet"
	"github.com/in-net/innet/internal/symexec"
)

func pkt(proto packet.Proto, src, dst string, sp, dp uint16) *packet.Packet {
	return &packet.Packet{
		Protocol: proto,
		SrcIP:    packet.MustParseIP(src),
		DstIP:    packet.MustParseIP(dst),
		SrcPort:  sp,
		DstPort:  dp,
		TTL:      64,
	}
}

func TestMatchBasics(t *testing.T) {
	udp := pkt(packet.ProtoUDP, "1.2.3.4", "5.6.7.8", 1111, 1500)
	tcp := pkt(packet.ProtoTCP, "10.0.0.1", "5.6.7.8", 4444, 80)
	cases := []struct {
		spec string
		p    *packet.Packet
		want bool
	}{
		{"udp", udp, true},
		{"udp", tcp, false},
		{"tcp", tcp, true},
		{"udp dst port 1500", udp, true},
		{"udp dst port 1501", udp, false},
		{"dst port 1500", udp, true},
		{"src port 1111", udp, true},
		{"port 1500", udp, true}, // either direction
		{"port 1111", udp, true}, // either direction
		{"port 2222", udp, false},
		{"dst 5.6.7.8", udp, true},
		{"src 1.2.3.4", udp, true},
		{"host 1.2.3.4", udp, true},
		{"host 5.6.7.8", udp, true},
		{"host 9.9.9.9", udp, false},
		{"net 10.0.0.0/8", tcp, true},
		{"src net 10.0.0.0/8", tcp, true},
		{"dst net 10.0.0.0/8", tcp, false},
		{"tcp src port 80 or tcp dst port 80", tcp, true},
		{"not udp", tcp, true},
		{"not udp", udp, false},
		{"udp and dst port 1500", udp, true},
		{"udp && dst port 1500", udp, true},
		{"(tcp or udp) and dst 5.6.7.8", udp, true},
		{"ip", tcp, true},
		{"", tcp, true},
		{"not (tcp or udp)", udp, false},
		{"portrange 1000-2000", udp, true},
		{"dst portrange 1501-2000", udp, false},
		{"port 1000-2000", udp, true},
		{"proto 132", &packet.Packet{Protocol: packet.ProtoSCTP}, true},
		{"sctp", &packet.Packet{Protocol: packet.ProtoSCTP}, true},
		{"icmp", &packet.Packet{Protocol: packet.ProtoICMP}, true},
		{"1.2.3.4", udp, true},
		{"10.0.0.0/8", tcp, true},
	}
	for _, c := range cases {
		s, err := Parse(c.spec)
		if err != nil {
			t.Errorf("Parse(%q): %v", c.spec, err)
			continue
		}
		if got := s.Match(c.p); got != c.want {
			t.Errorf("%q.Match(%v) = %v want %v", c.spec, c.p, got, c.want)
		}
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"udp dst port", "port abc", "port 70000", "host", "host notanip",
		"net 300.0.0.0/8", "frobnicate", "udp and", "(udp", "udp)",
		"portrange 5-", "portrange 9-2", "proto xyz", "not",
		"src", "dst 1.2.3.4.5",
	}
	for _, s := range bad {
		if _, err := Parse(s); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", s)
		}
	}
}

func TestRefineConstrainsState(t *testing.T) {
	s := MustParse("udp dst port 1500")
	st := symexec.NewState()
	out := s.Refine(st)
	if len(out) != 1 {
		t.Fatalf("refine produced %d states", len(out))
	}
	if v, ok := out[0].Values(symexec.FieldProto).IsSingle(); !ok || v != 17 {
		t.Errorf("proto = %v", out[0].Values(symexec.FieldProto))
	}
	if v, ok := out[0].Values(symexec.FieldDstPort).IsSingle(); !ok || v != 1500 {
		t.Errorf("dst port = %v", out[0].Values(symexec.FieldDstPort))
	}
}

func TestRefineUnsat(t *testing.T) {
	st := symexec.NewState()
	if !st.Constrain(symexec.FieldProto, symexec.Single(6)) {
		t.Fatal("setup")
	}
	if MustParse("udp").Satisfiable(st) {
		t.Error("udp should be unsatisfiable on a tcp-constrained state")
	}
	if !MustParse("tcp").Satisfiable(st) {
		t.Error("tcp should be satisfiable")
	}
	// Satisfiable must not mutate the original state.
	if !st.Values(symexec.FieldDstPort).Equal(symexec.Full(16)) {
		t.Error("Satisfiable mutated the state")
	}
}

func TestRefineDisjunctionSplits(t *testing.T) {
	s := MustParse("tcp or udp")
	out := s.Refine(symexec.NewState())
	if len(out) != 2 {
		t.Fatalf("or produced %d states, want 2", len(out))
	}
	protos := map[uint64]bool{}
	for _, st := range out {
		v, ok := st.Values(symexec.FieldProto).IsSingle()
		if !ok {
			t.Fatalf("branch proto not single: %v", st.Values(symexec.FieldProto))
		}
		protos[v] = true
	}
	if !protos[6] || !protos[17] {
		t.Errorf("protos = %v", protos)
	}
}

func TestNegationNNF(t *testing.T) {
	// "not dst port 80" must be an interval complement, satisfiable,
	// and exclude 80.
	st := symexec.NewState()
	out := MustParse("not dst port 80").Refine(st)
	if len(out) != 1 {
		t.Fatalf("states = %d", len(out))
	}
	vals := out[0].Values(symexec.FieldDstPort)
	if vals.Contains(80) || !vals.Contains(81) || !vals.Contains(0) {
		t.Errorf("dst port values = %v", vals)
	}
	// De Morgan: not (tcp or udp) excludes both.
	out = MustParse("not (tcp or udp)").Refine(symexec.NewState())
	if len(out) != 1 {
		t.Fatalf("states = %d", len(out))
	}
	v := out[0].Values(symexec.FieldProto)
	if v.Contains(6) || v.Contains(17) || !v.Contains(1) {
		t.Errorf("proto values = %v", v)
	}
}

func TestNotIPUnsatisfiable(t *testing.T) {
	if MustParse("not ip").Satisfiable(symexec.NewState()) {
		t.Error("not ip should be unsatisfiable")
	}
}

func TestHostRefinesEitherDirection(t *testing.T) {
	out := MustParse("host 1.2.3.4").Refine(symexec.NewState())
	if len(out) != 2 {
		t.Fatalf("host should split into src/dst branches, got %d", len(out))
	}
}

func TestFieldByName(t *testing.T) {
	cases := map[string]symexec.Field{
		"proto":        symexec.FieldProto,
		"src port":     symexec.FieldSrcPort,
		"dst port":     symexec.FieldDstPort,
		"dst":          symexec.FieldDstIP,
		"src":          symexec.FieldSrcIP,
		"payload":      symexec.FieldPayload,
		"ttl":          symexec.FieldTTL,
		"  DST  PORT ": symexec.FieldDstPort,
	}
	for in, want := range cases {
		got, err := FieldByName(in)
		if err != nil || got != want {
			t.Errorf("FieldByName(%q) = %v, %v", in, got, err)
		}
	}
	if _, err := FieldByName("nosuch"); err == nil {
		t.Error("unknown field accepted")
	}
}

func TestParseFieldList(t *testing.T) {
	fs, err := ParseFieldList("proto && dst port && payload")
	if err != nil {
		t.Fatal(err)
	}
	want := []symexec.Field{symexec.FieldProto, symexec.FieldDstPort, symexec.FieldPayload}
	if len(fs) != len(want) {
		t.Fatalf("fields = %v", fs)
	}
	for i := range fs {
		if fs[i] != want[i] {
			t.Errorf("fields[%d] = %v want %v", i, fs[i], want[i])
		}
	}
	if _, err := ParseFieldList(""); err == nil {
		t.Error("empty list accepted")
	}
	if _, err := ParseFieldList("proto, bogus"); err == nil {
		t.Error("bogus field accepted")
	}
}

func TestFieldOf(t *testing.T) {
	p := pkt(packet.ProtoTCP, "1.1.1.1", "2.2.2.2", 5, 6)
	p.Paint = 3
	p.FlowTag = 7
	for f, want := range map[symexec.Field]uint64{
		symexec.FieldSrcIP:   uint64(packet.MustParseIP("1.1.1.1")),
		symexec.FieldDstIP:   uint64(packet.MustParseIP("2.2.2.2")),
		symexec.FieldProto:   6,
		symexec.FieldSrcPort: 5,
		symexec.FieldDstPort: 6,
		symexec.FieldTTL:     64,
		symexec.FieldPaint:   3,
		symexec.FieldFWTag:   7,
	} {
		got, ok := FieldOf(p, f)
		if !ok || got != want {
			t.Errorf("FieldOf(%s) = %d,%v want %d", f, got, ok, want)
		}
	}
	if _, ok := FieldOf(p, symexec.FieldPayload); ok {
		t.Error("payload has no concrete projection")
	}
}

func TestMatchAndRefineAgree(t *testing.T) {
	// For fully-concrete packets, Match and Refine must agree: build
	// a state constrained to exactly the packet and check both.
	specs := []string{
		"udp", "tcp dst port 80", "not tcp", "host 1.2.3.4",
		"net 10.0.0.0/8 and not dst port 53", "(udp or tcp) and src port 1111",
	}
	pkts := []*packet.Packet{
		pkt(packet.ProtoUDP, "1.2.3.4", "10.1.2.3", 1111, 53),
		pkt(packet.ProtoTCP, "9.9.9.9", "8.8.8.8", 1111, 80),
		pkt(packet.ProtoICMP, "10.5.5.5", "1.2.3.4", 0, 0),
	}
	for _, spec := range specs {
		s := MustParse(spec)
		for _, p := range pkts {
			st := symexec.NewState()
			for _, f := range []symexec.Field{
				symexec.FieldSrcIP, symexec.FieldDstIP, symexec.FieldProto,
				symexec.FieldSrcPort, symexec.FieldDstPort, symexec.FieldTTL,
			} {
				v, _ := FieldOf(p, f)
				st.Assign(f, symexec.Const(v))
			}
			if got, want := s.Satisfiable(st), s.Match(p); got != want {
				t.Errorf("%q on %v: symbolic=%v concrete=%v", spec, p, got, want)
			}
		}
	}
}

func BenchmarkMatch(b *testing.B) {
	s := MustParse("udp and dst net 10.0.0.0/8 and dst port 1500")
	p := pkt(packet.ProtoUDP, "1.2.3.4", "10.1.2.3", 1111, 1500)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if !s.Match(p) {
			b.Fatal("no match")
		}
	}
}

func BenchmarkParse(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := Parse("udp and dst net 10.0.0.0/8 and dst port 1500"); err != nil {
			b.Fatal(err)
		}
	}
}
