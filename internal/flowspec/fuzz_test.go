package flowspec

import (
	"testing"

	"github.com/in-net/innet/internal/packet"
	"github.com/in-net/innet/internal/symexec"
)

// FuzzParse: the flow-spec parser must never panic, and any spec it
// accepts must agree between its concrete Match and its symbolic
// Refine on a fixed probe packet.
func FuzzParse(f *testing.F) {
	seeds := []string{
		"", "udp", "tcp dst port 80", "not (tcp or udp)",
		"host 1.2.3.4 and port 53", "net 10.0.0.0/8",
		"src portrange 1-100", "proto 132", "ip",
		"((((", "not", "port -1", "udp udp udp",
		"dst 255.255.255.255", "and and",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	probe := &packet.Packet{
		Protocol: packet.ProtoUDP,
		SrcIP:    packet.MustParseIP("1.2.3.4"),
		DstIP:    packet.MustParseIP("10.9.8.7"),
		SrcPort:  53, DstPort: 80, TTL: 64,
	}
	fields := []symexec.Field{
		symexec.FieldSrcIP, symexec.FieldDstIP, symexec.FieldProto,
		symexec.FieldSrcPort, symexec.FieldDstPort, symexec.FieldTTL,
	}
	f.Fuzz(func(t *testing.T, src string) {
		spec, err := Parse(src)
		if err != nil {
			return
		}
		st := symexec.NewState()
		for _, fl := range fields {
			v, _ := FieldOf(probe, fl)
			st.Assign(fl, symexec.Const(v))
		}
		if got, want := spec.Satisfiable(st), spec.Match(probe); got != want {
			t.Fatalf("%q: symbolic %v vs concrete %v", src, got, want)
		}
		// Negation must flip the concrete verdict.
		neg, err := spec.Negated()
		if err != nil {
			t.Fatalf("%q: Negated: %v", src, err)
		}
		if neg.Match(probe) == spec.Match(probe) {
			t.Fatalf("%q: negation did not flip Match", src)
		}
	})
}
