// Package api defines the JSON wire format of the In-Net controller
// daemon (cmd/innetd) and a small client used by cmd/innetctl. The
// paper's §4.3 assumes clients obtain the controller address
// out-of-band and submit processing requests with their credentials;
// this API is that interface.
package api

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"time"
)

// DeployRequest is the POST /v1/modules body.
type DeployRequest struct {
	Tenant       string   `json:"tenant"`
	ModuleName   string   `json:"module_name"`
	Config       string   `json:"config,omitempty"`
	Stock        string   `json:"stock,omitempty"`
	Requirements string   `json:"requirements,omitempty"`
	Trust        string   `json:"trust"` // "third-party" | "client" | "operator"
	Whitelist    []string `json:"whitelist,omitempty"`
	Transparent  bool     `json:"transparent,omitempty"`
}

// DeployResponse describes a placed module.
type DeployResponse struct {
	ID        string  `json:"id"`
	Platform  string  `json:"platform"`
	Addr      string  `json:"addr"`
	Sandboxed bool    `json:"sandboxed"`
	CompileMS float64 `json:"compile_ms"`
	CheckMS   float64 `json:"check_ms"`
}

// ModuleInfo is one entry of GET /v1/modules.
type ModuleInfo struct {
	ID         string `json:"id"`
	Tenant     string `json:"tenant"`
	ModuleName string `json:"module_name"`
	Platform   string `json:"platform"`
	Addr       string `json:"addr"`
	Sandboxed  bool   `json:"sandboxed"`
}

// QueryRequest is the POST /v1/query body: reach statements to check
// against the network as it currently stands, without deploying.
type QueryRequest struct {
	Requirements string `json:"requirements"`
}

// QueryResponse answers a reachability query.
type QueryResponse struct {
	Satisfied bool    `json:"satisfied"`
	Reason    string  `json:"reason,omitempty"`
	CompileMS float64 `json:"compile_ms"`
	CheckMS   float64 `json:"check_ms"`
}

// ErrorResponse carries a controller refusal or server error.
type ErrorResponse struct {
	Error string `json:"error"`
}

// Client talks to an innetd instance.
type Client struct {
	// BaseURL is e.g. "http://127.0.0.1:8640".
	BaseURL string
	// HTTP is the underlying client (default with 30 s timeout).
	HTTP *http.Client
}

// NewClient builds a client with sane defaults.
func NewClient(baseURL string) *Client {
	return &Client{
		BaseURL: baseURL,
		HTTP:    &http.Client{Timeout: 30 * time.Second},
	}
}

// Deploy submits a deployment request.
func (c *Client) Deploy(req DeployRequest) (*DeployResponse, error) {
	body, err := json.Marshal(req)
	if err != nil {
		return nil, err
	}
	resp, err := c.HTTP.Post(c.BaseURL+"/v1/modules", "application/json", bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		return nil, decodeError(resp)
	}
	var out DeployResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Query checks reachability without deploying.
func (c *Client) Query(requirements string) (*QueryResponse, error) {
	body, err := json.Marshal(QueryRequest{Requirements: requirements})
	if err != nil {
		return nil, err
	}
	resp, err := c.HTTP.Post(c.BaseURL+"/v1/query", "application/json", bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, decodeError(resp)
	}
	var out QueryResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Inject sends test packets through a deployed module (innetd
// -simulate mode only).
func (c *Client) Inject(req InjectRequest) (*InjectResponse, error) {
	body, err := json.Marshal(req)
	if err != nil {
		return nil, err
	}
	resp, err := c.HTTP.Post(c.BaseURL+"/v1/inject", "application/json", bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, decodeError(resp)
	}
	var out InjectResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Kill stops a deployed module.
func (c *Client) Kill(id string) error {
	req, err := http.NewRequest(http.MethodDelete, c.BaseURL+"/v1/modules/"+id, nil)
	if err != nil {
		return err
	}
	resp, err := c.HTTP.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusNoContent {
		return decodeError(resp)
	}
	return nil
}

// List fetches the current deployments.
func (c *Client) List() ([]ModuleInfo, error) {
	resp, err := c.HTTP.Get(c.BaseURL + "/v1/modules")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, decodeError(resp)
	}
	var out []ModuleInfo
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return nil, err
	}
	return out, nil
}

// Classes fetches the element classes the platform offers.
func (c *Client) Classes() ([]string, error) {
	resp, err := c.HTTP.Get(c.BaseURL + "/v1/classes")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, decodeError(resp)
	}
	var out []string
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return nil, err
	}
	return out, nil
}

func decodeError(resp *http.Response) error {
	data, _ := io.ReadAll(io.LimitReader(resp.Body, 64<<10))
	var e ErrorResponse
	if json.Unmarshal(data, &e) == nil && e.Error != "" {
		return fmt.Errorf("api: %s (HTTP %d)", e.Error, resp.StatusCode)
	}
	return fmt.Errorf("api: HTTP %d: %s", resp.StatusCode, bytes.TrimSpace(data))
}
