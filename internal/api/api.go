// Package api defines the JSON wire format of the In-Net controller
// daemon (cmd/innetd) and a small client used by cmd/innetctl. The
// paper's §4.3 assumes clients obtain the controller address
// out-of-band and submit processing requests with their credentials;
// this API is that interface.
package api

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/url"
	"strconv"
	"sync"
	"syscall"
	"time"

	"github.com/in-net/innet/internal/telemetry"
)

// DeployRequest is the POST /v1/modules body.
type DeployRequest struct {
	Tenant       string   `json:"tenant"`
	ModuleName   string   `json:"module_name"`
	Config       string   `json:"config,omitempty"`
	Stock        string   `json:"stock,omitempty"`
	Requirements string   `json:"requirements,omitempty"`
	Trust        string   `json:"trust"` // "third-party" | "client" | "operator"
	Whitelist    []string `json:"whitelist,omitempty"`
	Transparent  bool     `json:"transparent,omitempty"`
	// TraceEvery sets this module's per-flow path-trace sampling rate:
	// one flow in every N is traced end to end. 0 inherits the
	// platform default; negative disables tracing for the module.
	TraceEvery int `json:"trace_every,omitempty"`
}

// DeployResponse describes a placed module.
type DeployResponse struct {
	ID        string  `json:"id"`
	Platform  string  `json:"platform"`
	Addr      string  `json:"addr"`
	Sandboxed bool    `json:"sandboxed"`
	CompileMS float64 `json:"compile_ms"`
	CheckMS   float64 `json:"check_ms"`
}

// ModuleInfo is one entry of GET /v1/modules.
type ModuleInfo struct {
	ID         string `json:"id"`
	Tenant     string `json:"tenant"`
	ModuleName string `json:"module_name"`
	Platform   string `json:"platform"`
	Addr       string `json:"addr"`
	Sandboxed  bool   `json:"sandboxed"`
	// Status is the deployment lifecycle state: "active",
	// "degraded", "migrating" or "failed".
	Status string `json:"status"`
	// Dataplane is "pipeline" when the deployed config compiles into
	// the flattened run-to-completion dataplane, "graph-walk"
	// otherwise; FallbackReason carries the compiler's reason in the
	// latter case.
	Dataplane      string `json:"dataplane"`
	FallbackReason string `json:"fallback_reason,omitempty"`
}

// HealthResponse is the GET /v1/health body.
type HealthResponse struct {
	// Status is "ok" when every platform is healthy and every
	// deployment active, "degraded" otherwise.
	Status string `json:"status"`
	// Platforms maps platform name to health.
	Platforms map[string]bool `json:"platforms"`
	// Deployments counts deployments by lifecycle state.
	Deployments map[string]int `json:"deployments"`
	// Errors lists persistent control-plane faults: a best-effort
	// journal append that failed, or a deploy-timeout rollback whose
	// kill failed (the 503'd deployment is still live). Non-empty
	// forces Status "degraded".
	Errors []string `json:"errors,omitempty"`
	// Drops totals dropped packets per simulated platform (simulate
	// mode only).
	Drops map[string]uint64 `json:"drops,omitempty"`
	// Cache snapshots the admission-cache counters (all zero when
	// caching is disabled).
	Cache *CacheInfo `json:"cache,omitempty"`
	// Replication advertises this node's replication role — clients
	// and peers use it to find the leader after a failover. Absent on
	// an unreplicated (single) controller.
	Replication *ReplicationInfo `json:"replication,omitempty"`
	// Pipeline summarizes the compiled-dataplane status across live
	// deployments (workers, compiled vs graph-walk fallback counts,
	// fallback reasons).
	Pipeline *PipelineInfo `json:"pipeline,omitempty"`
	// DropReasons is the unified drop-attribution rollup: subsystem
	// site → taxonomy reason → total count, mirroring
	// innet_drops_total{site,reason}. Present when the daemon has the
	// drop hub wired.
	DropReasons map[string]map[string]uint64 `json:"drop_reasons,omitempty"`
}

// PipelineInfo is the compiled-dataplane slice of GET /v1/health.
type PipelineInfo struct {
	Workers  int            `json:"workers"`
	Compiled int            `json:"compiled"`
	Fallback int            `json:"fallback"`
	Reasons  map[string]int `json:"reasons,omitempty"`
	// Modules maps each live module name to its fallback reason; a
	// compiled module maps to "".
	Modules map[string]string `json:"modules,omitempty"`
}

// ReplicationInfo is the replication slice of GET /v1/health.
type ReplicationInfo struct {
	// Role is "leader", "standby" or "single".
	Role string `json:"role"`
	// Term is the current leadership term.
	Term uint64 `json:"term"`
	// Seq is this node's journal head.
	Seq uint64 `json:"seq"`
	// Fenced marks a deposed leader (read-only until restarted).
	Fenced bool `json:"fenced,omitempty"`
	// LeaderURL is the advertised API URL of the current leader, when
	// this node is not it.
	LeaderURL string `json:"leader_url,omitempty"`
	// LagRecords is how many journal records this node trails by.
	LagRecords uint64 `json:"lag_records"`
	// Peers counts configured replication peers.
	Peers int `json:"peers"`
	// ClusterSize and Majority describe the quorum arithmetic: N
	// replicas (this node included), commits need Majority acks.
	ClusterSize int `json:"cluster_size,omitempty"`
	Majority    int `json:"majority,omitempty"`
	// PeerDetail reports per-peer replication progress as seen from
	// this node (leaders track acks; populated only when peering).
	PeerDetail []PeerInfo `json:"peer_detail,omitempty"`
}

// PeerInfo is one replication peer's progress in GET /v1/health.
type PeerInfo struct {
	// Addr is the peer's replication listen address.
	Addr string `json:"addr"`
	// AckedSeq is the last journal seq the peer acknowledged.
	AckedSeq uint64 `json:"acked_seq"`
	// Lag is this node's journal head minus AckedSeq.
	Lag uint64 `json:"lag"`
	// Connected reports a live stream to the peer.
	Connected bool `json:"connected"`
	// TermConnected is the term the stream handshook under (a peer
	// connected in an older term does not count toward quorum).
	TermConnected uint64 `json:"term_connected,omitempty"`
}

// CacheInfo is the admission-cache slice of GET /v1/health: the
// whole-config verdict cache plus the per-element memo underneath it
// (memo counters are zero when the memo is disabled).
type CacheInfo struct {
	Hits          uint64 `json:"hits"`
	Misses        uint64 `json:"misses"`
	Evictions     uint64 `json:"evictions"`
	Invalidations uint64 `json:"invalidations"`
	Entries       int    `json:"entries"`

	MemoHits        uint64 `json:"memo_hits"`
	MemoMisses      uint64 `json:"memo_misses"`
	MemoUnsupported uint64 `json:"memo_unsupported"`
	MemoEvictions   uint64 `json:"memo_evictions"`
	MemoEntries     int    `json:"memo_entries"`
}

// TracesResponse is the GET /v1/traces body.
type TracesResponse struct {
	Traces []telemetry.Trace `json:"traces"`
}

// PathTracesResponse is the GET /v1/pathtrace body: the most recent
// sampled per-flow path traces for one deployed module.
type PathTracesResponse struct {
	// Module is the module name the query resolved.
	Module string `json:"module"`
	// Addr is the module's dataplane address.
	Addr string `json:"addr"`
	// Traces lists sampled traversals, newest first.
	Traces []telemetry.PathTrace `json:"traces"`
}

// EventsResponse is the GET /v1/events body: the flight recorder's
// most recent structured fault/transition events, newest first.
type EventsResponse struct {
	Events []telemetry.Event `json:"events"`
}

// QueryRequest is the POST /v1/query body: reach statements to check
// against the network as it currently stands, without deploying.
type QueryRequest struct {
	Requirements string `json:"requirements"`
}

// QueryResponse answers a reachability query.
type QueryResponse struct {
	Satisfied bool    `json:"satisfied"`
	Reason    string  `json:"reason,omitempty"`
	CompileMS float64 `json:"compile_ms"`
	CheckMS   float64 `json:"check_ms"`
}

// ErrorResponse carries a controller refusal or server error.
type ErrorResponse struct {
	Error string `json:"error"`
}

// Client talks to an innetd instance. Transient failures — transport
// errors and 5xx responses other than 501 — are retried with jittered
// exponential backoff (the server's Retry-After, when present, takes
// precedence over the computed backoff); controller refusals (4xx,
// including 413) and 501 are terminal. A redirect from a deposed
// leader re-aims the client at the advertised successor and is
// retried there.
type Client struct {
	// BaseURL is e.g. "http://127.0.0.1:8640".
	BaseURL string
	// HTTP is the underlying client (default with 30 s timeout).
	HTTP *http.Client
	// Retries is the number of additional attempts after a transient
	// failure (0 disables retrying).
	Retries int
	// RetryBase is the first backoff delay; it doubles per attempt
	// with ±50% jitter.
	RetryBase time.Duration
	// Sleep is stubbed by tests; nil means time.Sleep.
	Sleep func(time.Duration)

	// mu guards leader, the redirect-discovered base URL that
	// overrides BaseURL until the next redirect.
	mu     sync.Mutex
	leader string
}

// NewClient builds a client with sane defaults. Redirects are handled
// by the retry loop (not http.Client) so the leader discovered from a
// 307 sticks for subsequent calls.
func NewClient(baseURL string) *Client {
	return &Client{
		BaseURL: baseURL,
		HTTP: &http.Client{
			Timeout: 30 * time.Second,
			CheckRedirect: func(req *http.Request, via []*http.Request) error {
				return http.ErrUseLastResponse
			},
		},
		Retries:   3,
		RetryBase: 100 * time.Millisecond,
	}
}

// base is the URL requests go to: the redirect-discovered leader when
// one is known, BaseURL otherwise.
func (c *Client) base() string {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.leader != "" {
		return c.leader
	}
	return c.BaseURL
}

// Leader returns the leader base URL learned from redirects ("" if
// the client still talks to BaseURL).
func (c *Client) Leader() string {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.leader
}

func (c *Client) setLeader(u string) {
	c.mu.Lock()
	c.leader = u
	c.mu.Unlock()
}

// retryable reports whether a response status indicates a transient
// condition worth retrying: any 5xx except 501 Not Implemented (the
// server will never learn the method) — and never 4xx, in particular
// 413 Payload Too Large (the payload will not shrink by resending).
func retryable(status int) bool {
	return status >= 500 && status != http.StatusNotImplemented
}

// maxRedirects caps how many leader re-aims (307 hops plus
// connection-refused fallbacks to BaseURL) one request will follow.
// Two confused nodes advertising each other as leader would otherwise
// bounce the client forever without ever consuming its retry budget.
const maxRedirects = 5

// redirected reports a response that re-points the client (a deposed
// leader naming its successor).
func redirected(status int) bool {
	switch status {
	case http.StatusMovedPermanently, http.StatusFound,
		http.StatusTemporaryRedirect, http.StatusPermanentRedirect:
		return true
	}
	return false
}

// retryAfter parses a Retry-After header (seconds form) into a delay;
// ok is false when absent or unparseable.
func retryAfter(resp *http.Response) (time.Duration, bool) {
	v := resp.Header.Get("Retry-After")
	if v == "" {
		return 0, false
	}
	secs, err := strconv.Atoi(v)
	if err != nil || secs < 0 {
		return 0, false
	}
	return time.Duration(secs) * time.Second, true
}

// do issues one request, retrying transient failures. body may be nil;
// it is re-sent verbatim on every attempt.
func (c *Client) do(method, path string, body []byte) (*http.Response, error) {
	sleep := c.Sleep
	if sleep == nil {
		sleep = time.Sleep
	}
	backoff := c.RetryBase
	if backoff <= 0 {
		backoff = 100 * time.Millisecond
	}
	var lastErr error
	attempt, redirects := 0, 0
	for {
		var rd io.Reader
		if body != nil {
			rd = bytes.NewReader(body)
		}
		req, err := http.NewRequest(method, c.base()+path, rd)
		if err != nil {
			return nil, err
		}
		if body != nil {
			req.Header.Set("Content-Type", "application/json")
		}
		resp, err := c.HTTP.Do(req)
		// wait < 0 means re-aim and retry immediately (redirect or
		// dead-leader fallback); otherwise the jittered backoff,
		// overridden by an explicit Retry-After.
		wait := time.Duration(0)
		switch {
		case err != nil && errors.Is(err, syscall.ECONNREFUSED) && c.Leader() != "":
			// The sticky redirect-discovered leader is gone (crashed,
			// not merely slow). Fall back to the configured BaseURL,
			// which a surviving node may be serving — or redirecting
			// from — right now.
			c.setLeader("")
			lastErr = fmt.Errorf("api: leader unreachable, falling back to %s: %w", c.BaseURL, err)
			wait = -1
		case err != nil:
			lastErr = err
		case redirected(resp.StatusCode):
			loc := resp.Header.Get("Location")
			resp.Body.Close()
			if u, perr := url.Parse(loc); perr == nil && u.IsAbs() {
				c.setLeader(u.Scheme + "://" + u.Host)
				lastErr = fmt.Errorf("api: redirected to leader %s://%s (HTTP %d)", u.Scheme, u.Host, resp.StatusCode)
				wait = -1
			} else {
				lastErr = fmt.Errorf("api: redirect without usable Location (HTTP %d)", resp.StatusCode)
			}
		case retryable(resp.StatusCode):
			if d, ok := retryAfter(resp); ok {
				wait = d
			}
			lastErr = decodeError(resp)
			resp.Body.Close()
		default:
			return resp, nil
		}
		if wait < 0 {
			// Re-aims ride a separate (capped) budget: they cost no
			// backoff and should not eat into the retry allowance, but
			// a redirect cycle must still terminate.
			redirects++
			if redirects > maxRedirects {
				return nil, fmt.Errorf("api: gave up after %d leader redirects: %w", redirects-1, lastErr)
			}
			continue
		}
		if attempt >= c.Retries {
			plural := "s"
			if attempt == 0 {
				plural = ""
			}
			return nil, fmt.Errorf("after %d attempt%s: %w", attempt+1, plural, lastErr)
		}
		attempt++
		switch {
		case wait > 0:
			// The server named its own delay; jitter ±25% so a herd of
			// redirected clients does not re-arrive in lockstep.
			sleep(wait*3/4 + time.Duration(rand.Int63n(int64(wait/2)+1)))
		default:
			// Jitter the delay by ±50% so retry storms decorrelate.
			sleep(backoff/2 + time.Duration(rand.Int63n(int64(backoff))))
			backoff *= 2
		}
	}
}

// call issues a request and decodes the response into out (skipped if
// out is nil). Responses other than wantStatus become errors.
func (c *Client) call(method, path string, in any, wantStatus int, out any) error {
	var body []byte
	if in != nil {
		var err error
		if body, err = json.Marshal(in); err != nil {
			return err
		}
	}
	resp, err := c.do(method, path, body)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != wantStatus {
		return decodeError(resp)
	}
	if out == nil {
		return nil
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

// Deploy submits a deployment request. 201 is a fresh admission; 200
// means the server recognized the request as a retry of an admission
// it already holds (idempotent replay after a failover) and returned
// the existing deployment.
func (c *Client) Deploy(req DeployRequest) (*DeployResponse, error) {
	body, err := json.Marshal(req)
	if err != nil {
		return nil, err
	}
	resp, err := c.do(http.MethodPost, "/v1/modules", body)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusCreated && resp.StatusCode != http.StatusOK {
		return nil, decodeError(resp)
	}
	var out DeployResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Query checks reachability without deploying.
func (c *Client) Query(requirements string) (*QueryResponse, error) {
	var out QueryResponse
	if err := c.call(http.MethodPost, "/v1/query", QueryRequest{Requirements: requirements}, http.StatusOK, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Inject sends test packets through a deployed module (innetd
// -simulate mode only).
func (c *Client) Inject(req InjectRequest) (*InjectResponse, error) {
	var out InjectResponse
	if err := c.call(http.MethodPost, "/v1/inject", req, http.StatusOK, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Kill stops a deployed module.
func (c *Client) Kill(id string) error {
	return c.call(http.MethodDelete, "/v1/modules/"+id, nil, http.StatusNoContent, nil)
}

// List fetches the current deployments.
func (c *Client) List() ([]ModuleInfo, error) {
	var out []ModuleInfo
	if err := c.call(http.MethodGet, "/v1/modules", nil, http.StatusOK, &out); err != nil {
		return nil, err
	}
	return out, nil
}

// Classes fetches the element classes the platform offers.
func (c *Client) Classes() ([]string, error) {
	var out []string
	if err := c.call(http.MethodGet, "/v1/classes", nil, http.StatusOK, &out); err != nil {
		return nil, err
	}
	return out, nil
}

// Health fetches controller health: platform liveness and deployment
// lifecycle counts.
func (c *Client) Health() (*HealthResponse, error) {
	var out HealthResponse
	if err := c.call(http.MethodGet, "/v1/health", nil, http.StatusOK, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Metrics fetches the Prometheus text exposition from /v1/metrics.
func (c *Client) Metrics() (string, error) {
	resp, err := c.do(http.MethodGet, "/v1/metrics", nil)
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return "", decodeError(resp)
	}
	data, err := io.ReadAll(resp.Body)
	return string(data), err
}

// Traces fetches the n most recent admission traces (0 = the whole
// ring; negative uses the server default).
func (c *Client) Traces(n int) ([]telemetry.Trace, error) {
	path := "/v1/traces"
	if n >= 0 {
		path = fmt.Sprintf("%s?n=%d", path, n)
	}
	var out TracesResponse
	if err := c.call(http.MethodGet, path, nil, http.StatusOK, &out); err != nil {
		return nil, err
	}
	return out.Traces, nil
}

// PathTraces fetches the n most recent sampled path traces for a
// deployed module (0 = all retained; negative uses the server
// default).
func (c *Client) PathTraces(module string, n int) (*PathTracesResponse, error) {
	path := "/v1/pathtrace?module=" + url.QueryEscape(module)
	if n >= 0 {
		path = fmt.Sprintf("%s&n=%d", path, n)
	}
	var out PathTracesResponse
	if err := c.call(http.MethodGet, path, nil, http.StatusOK, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Events fetches the n most recent flight-recorder events (0 = the
// whole ring; negative uses the server default).
func (c *Client) Events(n int) ([]telemetry.Event, error) {
	path := "/v1/events"
	if n >= 0 {
		path = fmt.Sprintf("%s?n=%d", path, n)
	}
	var out EventsResponse
	if err := c.call(http.MethodGet, path, nil, http.StatusOK, &out); err != nil {
		return nil, err
	}
	return out.Events, nil
}

func decodeError(resp *http.Response) error {
	data, _ := io.ReadAll(io.LimitReader(resp.Body, 64<<10))
	var e ErrorResponse
	if json.Unmarshal(data, &e) == nil && e.Error != "" {
		return fmt.Errorf("api: %s (HTTP %d)", e.Error, resp.StatusCode)
	}
	return fmt.Errorf("api: HTTP %d: %s", resp.StatusCode, bytes.TrimSpace(data))
}
