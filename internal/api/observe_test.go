package api

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"

	"github.com/in-net/innet/internal/controller"
	"github.com/in-net/innet/internal/journal"
	"github.com/in-net/innet/internal/telemetry"
	"github.com/in-net/innet/internal/topology"
)

// newObservableServer is newTelemetryServer plus the observability
// additions: the unified drop hub and the flight recorder, wired
// through controller, simulator and server.
func newObservableServer(t *testing.T) (*httptest.Server, *Client, *telemetry.Recorder, *telemetry.Drops) {
	t.Helper()
	topo, err := topology.PaperFig3()
	if err != nil {
		t.Fatal(err)
	}
	ctl, err := controller.New(topo, "")
	if err != nil {
		t.Fatal(err)
	}
	st, err := journal.Open(t.TempDir(), journal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { st.Close() })
	ctl.AttachJournal(st)

	reg := telemetry.New()
	rec := telemetry.NewRecorder(0)
	drops := telemetry.NewDrops()
	ctl.AttachTelemetry(reg, telemetry.NewTracer(telemetry.DefaultTraceRing))
	ctl.SetRecorder(rec)
	ctl.RegisterDrops(drops)
	st.SetRecorder(rec)
	sim := NewSimulator(topo.Platforms())
	sim.RegisterMetrics(reg)
	sim.RegisterDrops(drops)
	sim.SetRecorder(rec)
	drops.Attach(reg)

	srv := NewServerWithSimulator(ctl, sim)
	srv.AttachTelemetry(reg, nil)
	srv.AttachObservability(drops, rec)
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)
	return ts, NewClient(ts.URL), rec, drops
}

// TestPathTraceEndpoint is the golden JSON-shape test for GET
// /v1/pathtrace: a module deployed with trace_every=1 must yield one
// complete trace per injected packet, with every hop field present in
// the raw JSON.
func TestPathTraceEndpoint(t *testing.T) {
	ts, c, _, _ := newObservableServer(t)
	dep, err := c.Deploy(DeployRequest{
		Tenant: "erin", ModuleName: "dns", Stock: "geo-dns",
		Trust: "third-party", TraceEvery: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Inject(InjectRequest{Dst: dep.Addr, DstPort: 53, Count: 3}); err != nil {
		t.Fatal(err)
	}

	resp, err := http.Get(ts.URL + "/v1/pathtrace?module=dns")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, want 200", resp.StatusCode)
	}
	var raw struct {
		Module string            `json:"module"`
		Addr   string            `json:"addr"`
		Traces []json.RawMessage `json:"traces"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&raw); err != nil {
		t.Fatal(err)
	}
	if raw.Module != "dns" || raw.Addr != dep.Addr {
		t.Errorf("resolved module=%q addr=%q, want dns/%s", raw.Module, raw.Addr, dep.Addr)
	}
	if len(raw.Traces) != 3 {
		t.Fatalf("got %d traces, want 3 (trace_every=1, 3 packets)", len(raw.Traces))
	}
	var trace map[string]json.RawMessage
	if err := json.Unmarshal(raw.Traces[0], &trace); err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"seq", "time", "flow_hash", "dataplane", "hops"} {
		if _, ok := trace[key]; !ok {
			t.Errorf("trace missing %q: %s", key, raw.Traces[0])
		}
	}
	var hops []map[string]json.RawMessage
	if err := json.Unmarshal(trace["hops"], &hops); err != nil {
		t.Fatal(err)
	}
	if len(hops) == 0 {
		t.Fatal("trace has no hops")
	}
	for _, key := range []string{"elem", "in_port", "out_port", "verdict", "fused_run"} {
		if _, ok := hops[0][key]; !ok {
			t.Errorf("hop missing %q: %s", key, trace["hops"])
		}
	}

	// Typed client agrees, and the traces are complete: every traversal
	// ends in a terminal verdict (tx/drop/queued), never mid-walk.
	got, err := c.PathTraces("dns", 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Traces) != 3 {
		t.Fatalf("client got %d traces, want 3", len(got.Traces))
	}
	for _, tr := range got.Traces {
		last := tr.Hops[len(tr.Hops)-1].Verdict
		if last == "forward" {
			t.Errorf("trace %d ends mid-walk: %+v", tr.Seq, tr.Hops)
		}
	}
	// Deployment-ID resolution works too.
	if byID, err := c.PathTraces(got.Module, 0); err != nil || len(byID.Traces) != 3 {
		t.Errorf("resolve by name: traces=%v err=%v", byID, err)
	}
}

// TestPathTraceEndpointErrors pins the error contract: 400 without a
// module, 404 for an unknown one, 501 without the simulator.
func TestPathTraceEndpointErrors(t *testing.T) {
	ts, _, _, _ := newObservableServer(t)
	for _, tc := range []struct {
		path string
		want int
	}{
		{"/v1/pathtrace", http.StatusBadRequest},
		{"/v1/pathtrace?module=ghost", http.StatusNotFound},
		{"/v1/pathtrace?module=dns&n=zebra", http.StatusBadRequest},
	} {
		resp, err := http.Get(ts.URL + tc.path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != tc.want {
			t.Errorf("%s status = %d, want %d", tc.path, resp.StatusCode, tc.want)
		}
	}

	bare, _ := newTestServer(t)
	for _, path := range []string{"/v1/pathtrace?module=dns", "/v1/events"} {
		resp, err := http.Get(bare.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotImplemented {
			t.Errorf("%s on bare server status = %d, want 501", path, resp.StatusCode)
		}
	}
}

// TestEventsEndpoint is the golden JSON-shape test for GET /v1/events:
// recorded events come back newest first with every field present.
func TestEventsEndpoint(t *testing.T) {
	ts, c, rec, _ := newObservableServer(t)
	rec.Record("platform-outage", "platform", "", "p1")
	rec.Record("vm-crash", "platform", "crash", "10.0.0.1")
	rec.Record("election-won", "replication", "term 2 after 100ms leader silence", ":9999")

	resp, err := http.Get(ts.URL + "/v1/events?n=2")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var raw struct {
		Events []map[string]json.RawMessage `json:"events"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&raw); err != nil {
		t.Fatal(err)
	}
	if len(raw.Events) != 2 {
		t.Fatalf("got %d events, want 2", len(raw.Events))
	}
	for _, key := range []string{"seq", "time", "type", "source"} {
		if _, ok := raw.Events[0][key]; !ok {
			t.Errorf("event missing %q: %v", key, raw.Events[0])
		}
	}

	events, err := c.Events(0)
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != 3 {
		t.Fatalf("client got %d events, want 3", len(events))
	}
	if events[0].Type != "election-won" || events[2].Type != "platform-outage" {
		t.Errorf("events not newest-first: %+v", events)
	}
	if events[0].Seq <= events[1].Seq {
		t.Errorf("event seqs not decreasing: %d then %d", events[0].Seq, events[1].Seq)
	}
}

// TestHealthDropReasons asserts the unified drop rollup and the
// per-module pipeline map ride /v1/health: an admission rejection
// shows up under site "admission", and the deployed module appears in
// pipeline.modules.
func TestHealthDropReasons(t *testing.T) {
	ts, c, _, _ := newObservableServer(t)
	if _, err := c.Deploy(DeployRequest{
		Tenant: "erin", ModuleName: "dns", Stock: "geo-dns", Trust: "third-party",
	}); err != nil {
		t.Fatal(err)
	}
	// An admission the placement stage refuses — one attributed
	// admission drop.
	if _, err := c.Deploy(DeployRequest{
		Tenant: "erin", ModuleName: "bogus", Stock: "no-such-stock", Trust: "third-party",
	}); err == nil {
		t.Fatal("unknown-stock deploy unexpectedly admitted")
	}

	resp, err := http.Get(ts.URL + "/v1/health")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var raw struct {
		DropReasons map[string]map[string]uint64 `json:"drop_reasons"`
		Pipeline    struct {
			Modules map[string]string `json:"modules"`
		} `json:"pipeline"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&raw); err != nil {
		t.Fatal(err)
	}
	if got := raw.DropReasons["admission"]["rejected"]; got != 1 {
		t.Errorf("drop_reasons[admission][rejected] = %d, want 1 (full rollup: %v)", got, raw.DropReasons)
	}
	for _, site := range []string{"platform", "pipeline", "vswitch"} {
		if _, ok := raw.DropReasons[site]; !ok {
			t.Errorf("drop rollup missing site %q: %v", site, raw.DropReasons)
		}
	}
	if _, ok := raw.Pipeline.Modules["dns"]; !ok {
		t.Errorf("pipeline.modules missing dns: %v", raw.Pipeline.Modules)
	}

	h, err := c.Health()
	if err != nil {
		t.Fatal(err)
	}
	if h.DropReasons == nil || h.Pipeline == nil || h.Pipeline.Modules == nil {
		t.Errorf("typed health lost the rollups: drops=%v pipeline=%+v", h.DropReasons, h.Pipeline)
	}
}
