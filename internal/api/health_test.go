package api

import (
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"github.com/in-net/innet/internal/controller"
	"github.com/in-net/innet/internal/topology"
)

func TestHealthEndpoint(t *testing.T) {
	topo, err := topology.PaperFig3()
	if err != nil {
		t.Fatal(err)
	}
	ctl, err := controller.New(topo, "")
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(NewServer(ctl))
	t.Cleanup(ts.Close)
	c := NewClient(ts.URL)

	h, err := c.Health()
	if err != nil {
		t.Fatal(err)
	}
	if h.Status != "ok" {
		t.Errorf("status = %q", h.Status)
	}
	if len(h.Platforms) != 3 {
		t.Errorf("platforms = %v", h.Platforms)
	}
	for name, up := range h.Platforms {
		if !up {
			t.Errorf("platform %s reported down on a fresh controller", name)
		}
	}

	ctl.MarkPlatformDown("Platform1")
	h, err = c.Health()
	if err != nil {
		t.Fatal(err)
	}
	if h.Status != "degraded" || h.Platforms["Platform1"] {
		t.Errorf("after outage: %+v", h)
	}
}

func TestModuleInfoCarriesStatus(t *testing.T) {
	_, c := newTestServer(t)
	dep, err := c.Deploy(DeployRequest{
		Tenant: "erin", ModuleName: "dns", Stock: "geo-dns", Trust: "third-party",
	})
	if err != nil {
		t.Fatal(err)
	}
	mods, err := c.List()
	if err != nil {
		t.Fatal(err)
	}
	if len(mods) != 1 || mods[0].Status != "active" {
		t.Errorf("list = %+v", mods)
	}
	h, err := c.Health()
	if err != nil {
		t.Fatal(err)
	}
	if h.Deployments["active"] != 1 {
		t.Errorf("deployments = %v", h.Deployments)
	}
	_ = dep
}

func TestClientRetriesTransientErrors(t *testing.T) {
	var calls atomic.Int32
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) <= 2 {
			w.WriteHeader(http.StatusServiceUnavailable)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		w.Write([]byte(`{"status":"ok","platforms":{},"deployments":{}}`))
	}))
	t.Cleanup(ts.Close)

	c := NewClient(ts.URL)
	var slept []time.Duration
	c.Sleep = func(d time.Duration) { slept = append(slept, d) }
	c.RetryBase = 10 * time.Millisecond

	h, err := c.Health()
	if err != nil {
		t.Fatal(err)
	}
	if h.Status != "ok" {
		t.Errorf("status = %q", h.Status)
	}
	if calls.Load() != 3 {
		t.Errorf("calls = %d, want 3", calls.Load())
	}
	if len(slept) != 2 {
		t.Fatalf("slept %d times", len(slept))
	}
	// Jittered exponential backoff: attempt n waits in
	// [base/2, 3*base/2) with base doubling each round.
	base := 10 * time.Millisecond
	for i, d := range slept {
		if d < base/2 || d >= base+base/2 {
			t.Errorf("sleep %d = %v outside [%v, %v)", i, d, base/2, base+base/2)
		}
		base *= 2
	}
}

func TestClientRetriesExhaust(t *testing.T) {
	var calls atomic.Int32
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		w.WriteHeader(http.StatusBadGateway)
	}))
	t.Cleanup(ts.Close)

	c := NewClient(ts.URL)
	c.Retries = 2
	c.Sleep = func(time.Duration) {}
	if _, err := c.Health(); err == nil {
		t.Fatal("exhausted retries reported success")
	}
	if calls.Load() != 3 {
		t.Errorf("calls = %d, want 3 (1 + 2 retries)", calls.Load())
	}
}

func TestClientDoesNotRetryRejections(t *testing.T) {
	var calls atomic.Int32
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		w.WriteHeader(http.StatusUnprocessableEntity)
		w.Write([]byte(`{"error":"no"}`))
	}))
	t.Cleanup(ts.Close)

	c := NewClient(ts.URL)
	c.Sleep = func(time.Duration) { t.Error("slept on a non-retryable status") }
	if _, err := c.Deploy(DeployRequest{}); err == nil {
		t.Fatal("422 reported success")
	}
	if calls.Load() != 1 {
		t.Errorf("calls = %d; controller refusals must not be retried", calls.Load())
	}
}

func TestClientRetriesTransportErrors(t *testing.T) {
	// A connection-refused address: transport errors retry too.
	c := NewClient("http://127.0.0.1:1")
	c.Retries = 2
	n := 0
	c.Sleep = func(time.Duration) { n++ }
	if _, err := c.Health(); err == nil {
		t.Fatal("dead endpoint reported success")
	}
	if n != 2 {
		t.Errorf("slept %d times, want 2", n)
	}
}
