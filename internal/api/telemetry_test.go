package api

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"github.com/in-net/innet/internal/controller"
	"github.com/in-net/innet/internal/journal"
	"github.com/in-net/innet/internal/telemetry"
	"github.com/in-net/innet/internal/topology"
)

// newTelemetryServer builds the full observable stack: controller
// with journal, simulator, registry, tracer, all attached.
func newTelemetryServer(t *testing.T) (*httptest.Server, *Client, *telemetry.Registry) {
	t.Helper()
	topo, err := topology.PaperFig3()
	if err != nil {
		t.Fatal(err)
	}
	ctl, err := controller.New(topo, "")
	if err != nil {
		t.Fatal(err)
	}
	st, err := journal.Open(t.TempDir(), journal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { st.Close() })
	ctl.AttachJournal(st)

	reg := telemetry.New()
	tr := telemetry.NewTracer(telemetry.DefaultTraceRing)
	ctl.AttachTelemetry(reg, tr)
	st.RegisterMetrics(reg)
	sim := NewSimulator(topo.Platforms())
	sim.RegisterMetrics(reg)

	srv := NewServerWithSimulator(ctl, sim)
	srv.AttachTelemetry(reg, tr)
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)
	return ts, NewClient(ts.URL), reg
}

// TestMetricsEndpoint drives a deploy + traffic through the stack and
// asserts the exposition covers every required subsystem family.
func TestMetricsEndpoint(t *testing.T) {
	_, c, _ := newTelemetryServer(t)
	dep, err := c.Deploy(DeployRequest{
		Tenant: "erin", ModuleName: "dns", Stock: "geo-dns", Trust: "third-party",
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Inject(InjectRequest{Dst: dep.Addr, DstPort: 53, Count: 5}); err != nil {
		t.Fatal(err)
	}

	text, err := c.Metrics()
	if err != nil {
		t.Fatal(err)
	}
	for _, family := range []string{
		"innet_admission_stage_seconds",
		"innet_admission_verdicts_total",
		"innet_admission_seconds",
		"innet_controller_placed_total",
		"innet_vswitch_dispatched_total",
		"innet_vswitch_misses_total",
		"innet_platform_boots_total",
		"innet_platform_dropped_total",
		"innet_journal_appends_total",
		"innet_journal_fsyncs_total",
		"innet_api_requests_total",
		"innet_api_request_seconds",
	} {
		if !strings.Contains(text, family) {
			t.Errorf("exposition missing family %s", family)
		}
	}
	// The injected packets went through the vswitch and booted a VM.
	if !strings.Contains(text, `innet_vswitch_dispatched_total{platform="`+dep.Platform+`"} 5`) {
		t.Errorf("vswitch dispatch not counted for %s:\n%s", dep.Platform, grepLines(text, "innet_vswitch_dispatched"))
	}
	if !strings.Contains(text, `innet_platform_boots_total{platform="`+dep.Platform+`"} 1`) {
		t.Errorf("platform boot not counted:\n%s", grepLines(text, "innet_platform_boots"))
	}
	if !strings.Contains(text, `innet_journal_appends_total 1`) {
		t.Errorf("journal append not counted:\n%s", grepLines(text, "innet_journal_appends"))
	}
}

func grepLines(text, substr string) string {
	var out []string
	for _, ln := range strings.Split(text, "\n") {
		if strings.Contains(ln, substr) {
			out = append(out, ln)
		}
	}
	return strings.Join(out, "\n")
}

// TestTracesEndpoint asserts a freshly deployed module's admission
// trace is served with every stage and its duration.
func TestTracesEndpoint(t *testing.T) {
	_, c, _ := newTelemetryServer(t)
	if _, err := c.Deploy(DeployRequest{
		Tenant: "erin", ModuleName: "dns", Stock: "geo-dns", Trust: "third-party",
	}); err != nil {
		t.Fatal(err)
	}
	traces, err := c.Traces(10)
	if err != nil {
		t.Fatal(err)
	}
	if len(traces) != 1 {
		t.Fatalf("got %d traces, want 1", len(traces))
	}
	tr := traces[0]
	if tr.Kind != "deploy" || tr.ID != "dns" || tr.Verdict != "admitted" {
		t.Errorf("trace = %+v", tr)
	}
	seen := map[string]bool{}
	for _, st := range tr.Stages {
		seen[st.Name] = true
	}
	for _, want := range controller.AdmissionStages {
		if !seen[want] {
			t.Errorf("trace missing stage %q", want)
		}
	}
}

// TestTracesEndpointBadN pins the n parameter validation.
func TestTracesEndpointBadN(t *testing.T) {
	ts, _, _ := newTelemetryServer(t)
	resp, err := http.Get(ts.URL + "/v1/traces?n=zebra")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("status = %d, want 400", resp.StatusCode)
	}
}

// TestTelemetryEndpointsOffByDefault pins that a server without
// AttachTelemetry answers 501 on both endpoints.
func TestTelemetryEndpointsOffByDefault(t *testing.T) {
	ts, _ := newTestServer(t)
	for _, path := range []string{"/v1/metrics", "/v1/traces"} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotImplemented {
			t.Errorf("%s status = %d, want 501", path, resp.StatusCode)
		}
	}
}

// TestHealthCarriesDropsAndCache is the satellite-2 shape test: the
// raw /v1/health JSON must carry per-platform drop totals and the
// admission-cache counters.
func TestHealthCarriesDropsAndCache(t *testing.T) {
	ts, c, _ := newTelemetryServer(t)
	if _, err := c.Deploy(DeployRequest{
		Tenant: "erin", ModuleName: "dns", Stock: "geo-dns", Trust: "third-party",
	}); err != nil {
		t.Fatal(err)
	}

	resp, err := http.Get(ts.URL + "/v1/health")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var raw map[string]json.RawMessage
	if err := json.NewDecoder(resp.Body).Decode(&raw); err != nil {
		t.Fatal(err)
	}

	var drops map[string]uint64
	if err := json.Unmarshal(raw["drops"], &drops); err != nil {
		t.Fatalf("health has no well-formed drops field: %v (raw: %s)", err, raw["drops"])
	}
	if len(drops) != 3 {
		t.Errorf("drops = %v, want one entry per platform", drops)
	}
	var cache map[string]json.RawMessage
	if err := json.Unmarshal(raw["cache"], &cache); err != nil {
		t.Fatalf("health has no well-formed cache field: %v", err)
	}
	for _, key := range []string{"hits", "misses", "evictions", "invalidations", "entries"} {
		if _, ok := cache[key]; !ok {
			t.Errorf("health cache missing %q: %s", key, raw["cache"])
		}
	}

	// Typed client sees the same data.
	h, err := c.Health()
	if err != nil {
		t.Fatal(err)
	}
	if h.Cache == nil || h.Cache.Misses == 0 {
		t.Errorf("cache stats = %+v, want recorded misses from the deploy", h.Cache)
	}
	if h.Drops == nil {
		t.Error("typed health response lost the drops map")
	}
}
