package api

import (
	"fmt"
	"strings"
	"sync"

	"github.com/in-net/innet/internal/controller"
	"github.com/in-net/innet/internal/netsim"
	"github.com/in-net/innet/internal/packet"
	"github.com/in-net/innet/internal/platform"
)

// Simulator hosts an in-process dataplane emulation behind innetd's
// -simulate mode: one simulated platform per topology platform, with
// every successful deployment registered on its host. Clients can
// then POST /v1/inject test packets and watch their modules process
// them — boot-on-first-packet latency included.
type Simulator struct {
	mu        sync.Mutex
	sim       *netsim.Sim
	platforms map[string]*platform.Platform
	byAddr    map[uint32]string // module addr -> platform name
}

// NewSimulator builds platforms for the given topology platform
// names.
func NewSimulator(platformNames []string) *Simulator {
	s := &Simulator{
		sim:       netsim.New(1),
		platforms: make(map[string]*platform.Platform),
		byAddr:    make(map[uint32]string),
	}
	for _, name := range platformNames {
		s.platforms[name] = platform.New(s.sim, platform.DefaultModel(), 16*1024)
	}
	return s
}

// Register installs a deployment on its hosting platform.
func (s *Simulator) Register(dep *controller.Deployment) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	p, ok := s.platforms[dep.Platform]
	if !ok {
		return fmt.Errorf("api: no simulated platform %q", dep.Platform)
	}
	if err := p.Register(dep.PlatformSpec()); err != nil {
		return err
	}
	s.byAddr[dep.Addr] = dep.Platform
	return nil
}

// Unregister removes a deployment.
func (s *Simulator) Unregister(dep *controller.Deployment) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if p, ok := s.platforms[dep.Platform]; ok {
		p.Unregister(dep.Addr)
	}
	delete(s.byAddr, dep.Addr)
}

// InjectRequest is the POST /v1/inject body: a test packet aimed at a
// deployed module's address.
type InjectRequest struct {
	Dst     string `json:"dst"`
	Src     string `json:"src"`
	Proto   string `json:"proto"` // udp | tcp | icmp
	SrcPort uint16 `json:"src_port"`
	DstPort uint16 `json:"dst_port"`
	Payload string `json:"payload,omitempty"`
	// Count sends the packet multiple times (default 1).
	Count int `json:"count,omitempty"`
}

// EmittedPacket describes one packet a module emitted.
type EmittedPacket struct {
	Src       string  `json:"src"`
	Dst       string  `json:"dst"`
	Proto     string  `json:"proto"`
	SrcPort   uint16  `json:"src_port"`
	DstPort   uint16  `json:"dst_port"`
	Payload   string  `json:"payload"`
	LatencyMS float64 `json:"latency_ms"`
}

// InjectResponse reports what the module did with the test traffic.
type InjectResponse struct {
	Platform string          `json:"platform"`
	Sent     int             `json:"sent"`
	Emitted  []EmittedPacket `json:"emitted"`
	// BootedVM is true when this injection instantiated the VM.
	BootedVM bool `json:"booted_vm"`
}

// Inject delivers test packets to the module owning the destination
// address and runs the virtual clock until the dataplane drains
// (bounded by a 10-virtual-minute horizon so batching modules
// release).
func (s *Simulator) Inject(req InjectRequest) (*InjectResponse, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	dst, err := packet.ParseIP(req.Dst)
	if err != nil {
		return nil, fmt.Errorf("api: bad dst: %v", err)
	}
	platName, ok := s.byAddr[dst]
	if !ok {
		return nil, fmt.Errorf("api: no deployed module at %s", req.Dst)
	}
	p := s.platforms[platName]
	src := packet.MustParseIP("192.0.2.99")
	if req.Src != "" {
		if src, err = packet.ParseIP(req.Src); err != nil {
			return nil, fmt.Errorf("api: bad src: %v", err)
		}
	}
	var proto packet.Proto
	switch strings.ToLower(req.Proto) {
	case "", "udp":
		proto = packet.ProtoUDP
	case "tcp":
		proto = packet.ProtoTCP
	case "icmp":
		proto = packet.ProtoICMP
	default:
		return nil, fmt.Errorf("api: unknown proto %q", req.Proto)
	}
	count := req.Count
	if count <= 0 {
		count = 1
	}
	if count > 10000 {
		return nil, fmt.Errorf("api: count %d too large", count)
	}

	resp := &InjectResponse{Platform: platName, Sent: count}
	booted := p.VMFor(dst) == nil
	start := s.sim.Now()
	for i := 0; i < count; i++ {
		pk := &packet.Packet{
			Protocol: proto,
			SrcIP:    src,
			DstIP:    dst,
			SrcPort:  req.SrcPort,
			DstPort:  req.DstPort,
			TTL:      64,
			Payload:  []byte(req.Payload),
		}
		p.Deliver(pk, func(iface int, out *packet.Packet) {
			resp.Emitted = append(resp.Emitted, EmittedPacket{
				Src:       packet.IPString(out.SrcIP),
				Dst:       packet.IPString(out.DstIP),
				Proto:     out.Protocol.String(),
				SrcPort:   out.SrcPort,
				DstPort:   out.DstPort,
				Payload:   string(out.Payload),
				LatencyMS: float64(s.sim.Now()-start) / 1e6,
			})
		})
	}
	// Drain the virtual clock (bounded: batchers may hold packets).
	s.sim.RunUntil(start + 10*60*netsim.Second)
	resp.BootedVM = booted
	if resp.Emitted == nil {
		resp.Emitted = []EmittedPacket{}
	}
	return resp, nil
}
