package api

import (
	"fmt"
	"strings"
	"sync"

	"github.com/in-net/innet/internal/controller"
	"github.com/in-net/innet/internal/netsim"
	"github.com/in-net/innet/internal/packet"
	"github.com/in-net/innet/internal/platform"
	"github.com/in-net/innet/internal/telemetry"
	"github.com/in-net/innet/internal/vswitch"
)

// Simulator hosts an in-process dataplane emulation behind innetd's
// -simulate mode: one simulated platform per topology platform, each
// fronted by a virtual switch (§5: the vswitch redirects flows to the
// processing modules), with every successful deployment registered on
// its host and a flow rule installed for its address. Clients can
// then POST /v1/inject test packets and watch their modules process
// them — boot-on-first-packet latency included.
type Simulator struct {
	mu        sync.Mutex
	sim       *netsim.Sim
	platforms map[string]*platform.Platform
	switches  map[string]*vswitch.Switch
	rules     map[uint32]*vswitch.Rule // module addr -> installed rule
	byAddr    map[uint32]string        // module addr -> platform name
	// emit collects module output during one Inject; the vswitch
	// ToModule closures read it, so it is only set under mu.
	emit func(iface int, out *packet.Packet)
}

// NewSimulator builds platforms for the given topology platform
// names.
func NewSimulator(platformNames []string) *Simulator {
	s := &Simulator{
		sim:       netsim.New(1),
		platforms: make(map[string]*platform.Platform),
		switches:  make(map[string]*vswitch.Switch),
		rules:     make(map[uint32]*vswitch.Rule),
		byAddr:    make(map[uint32]string),
	}
	for _, name := range platformNames {
		p := platform.New(s.sim, platform.DefaultModel(), 16*1024)
		s.platforms[name] = p
		sw := vswitch.New()
		sw.ToModule = func(_ uint32, pk *packet.Packet) {
			p.Deliver(pk, func(iface int, out *packet.Packet) {
				if s.emit != nil {
					s.emit(iface, out)
				}
			})
		}
		s.switches[name] = sw
	}
	return s
}

// Register installs a deployment on its hosting platform and a
// dispatch rule for its address on the platform's vswitch.
func (s *Simulator) Register(dep *controller.Deployment) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	p, ok := s.platforms[dep.Platform]
	if !ok {
		return fmt.Errorf("api: no simulated platform %q", dep.Platform)
	}
	if err := p.Register(dep.PlatformSpec()); err != nil {
		return err
	}
	s.byAddr[dep.Addr] = dep.Platform
	s.rules[dep.Addr] = s.switches[dep.Platform].Install(vswitch.Rule{
		Priority: 10,
		Match:    vswitch.Match{DstIP: dep.Addr},
		Action:   vswitch.ActToModule,
		Module:   dep.Addr,
	})
	return nil
}

// Unregister removes a deployment and its vswitch rule.
func (s *Simulator) Unregister(dep *controller.Deployment) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if p, ok := s.platforms[dep.Platform]; ok {
		p.Unregister(dep.Addr)
	}
	if r, ok := s.rules[dep.Addr]; ok {
		_ = s.switches[dep.Platform].Remove(r)
		delete(s.rules, dep.Addr)
	}
	delete(s.byAddr, dep.Addr)
}

// RegisterMetrics folds every simulated platform's lifecycle/drop
// counters and every vswitch's dispatch counters into the registry.
// Platform callbacks read under s.mu (the platforms are driven under
// it); vswitch callbacks are wait-free atomics.
func (s *Simulator) RegisterMetrics(r *telemetry.Registry) {
	if r == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	for name, p := range s.platforms {
		p.RegisterMetrics(r, name, &s.mu)
		s.switches[name].RegisterMetrics(r, "platform", name)
	}
}

// RegisterDrops contributes every simulated platform's drop counters
// (platform lifecycle drops plus compiled-pipeline per-reason drops)
// and every vswitch's dispatch drops to the unified attribution hub.
// Platform reads take s.mu like RegisterMetrics; vswitch reads are
// wait-free atomics.
func (s *Simulator) RegisterDrops(d *telemetry.Drops) {
	if d == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	for name, p := range s.platforms {
		p.RegisterDrops(d, &s.mu)
		s.switches[name].RegisterDrops(d)
	}
}

// SetRecorder points every simulated platform's fault events at one
// shared flight recorder. Call before traffic flows.
func (s *Simulator) SetRecorder(rec *telemetry.Recorder) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, p := range s.platforms {
		p.Rec = rec
	}
}

// SetTraceEvery sets the default per-flow path-trace sampling rate on
// every simulated platform (a module's own TraceEvery still wins).
func (s *Simulator) SetTraceEvery(every int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, p := range s.platforms {
		p.TraceEvery = every
	}
}

// PathTraces returns the n most recent sampled path traces for the
// module at addr on the named platform (newest first; n <= 0 = all
// retained).
func (s *Simulator) PathTraces(platformName string, addr uint32, n int) []telemetry.PathTrace {
	s.mu.Lock()
	defer s.mu.Unlock()
	p, ok := s.platforms[platformName]
	if !ok {
		return nil
	}
	return p.PathTraces(addr, n)
}

// Drops reports each platform's total dropped-packet count (the sum
// of its Dropped* counters), for /v1/health.
func (s *Simulator) Drops() map[string]uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make(map[string]uint64, len(s.platforms))
	for name, p := range s.platforms {
		out[name] = p.DroppedTotal()
	}
	return out
}

// InjectRequest is the POST /v1/inject body: a test packet aimed at a
// deployed module's address.
type InjectRequest struct {
	Dst     string `json:"dst"`
	Src     string `json:"src"`
	Proto   string `json:"proto"` // udp | tcp | icmp
	SrcPort uint16 `json:"src_port"`
	DstPort uint16 `json:"dst_port"`
	Payload string `json:"payload,omitempty"`
	// Count sends the packet multiple times (default 1).
	Count int `json:"count,omitempty"`
}

// EmittedPacket describes one packet a module emitted.
type EmittedPacket struct {
	Src       string  `json:"src"`
	Dst       string  `json:"dst"`
	Proto     string  `json:"proto"`
	SrcPort   uint16  `json:"src_port"`
	DstPort   uint16  `json:"dst_port"`
	Payload   string  `json:"payload"`
	LatencyMS float64 `json:"latency_ms"`
}

// InjectResponse reports what the module did with the test traffic.
type InjectResponse struct {
	Platform string          `json:"platform"`
	Sent     int             `json:"sent"`
	Emitted  []EmittedPacket `json:"emitted"`
	// BootedVM is true when this injection instantiated the VM.
	BootedVM bool `json:"booted_vm"`
}

// Inject delivers test packets to the module owning the destination
// address and runs the virtual clock until the dataplane drains
// (bounded by a 10-virtual-minute horizon so batching modules
// release).
func (s *Simulator) Inject(req InjectRequest) (*InjectResponse, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	dst, err := packet.ParseIP(req.Dst)
	if err != nil {
		return nil, fmt.Errorf("api: bad dst: %v", err)
	}
	platName, ok := s.byAddr[dst]
	if !ok {
		return nil, fmt.Errorf("api: no deployed module at %s", req.Dst)
	}
	p := s.platforms[platName]
	src := packet.MustParseIP("192.0.2.99")
	if req.Src != "" {
		if src, err = packet.ParseIP(req.Src); err != nil {
			return nil, fmt.Errorf("api: bad src: %v", err)
		}
	}
	var proto packet.Proto
	switch strings.ToLower(req.Proto) {
	case "", "udp":
		proto = packet.ProtoUDP
	case "tcp":
		proto = packet.ProtoTCP
	case "icmp":
		proto = packet.ProtoICMP
	default:
		return nil, fmt.Errorf("api: unknown proto %q", req.Proto)
	}
	count := req.Count
	if count <= 0 {
		count = 1
	}
	if count > 10000 {
		return nil, fmt.Errorf("api: count %d too large", count)
	}

	resp := &InjectResponse{Platform: platName, Sent: count}
	booted := p.VMFor(dst) == nil
	start := s.sim.Now()
	// Injected packets enter through the platform's vswitch — the same
	// flow-rule dispatch a real deployment sees — and the ToModule
	// closure delivers into the platform. emit collects what the
	// module sends back out.
	s.emit = func(iface int, out *packet.Packet) {
		resp.Emitted = append(resp.Emitted, EmittedPacket{
			Src:       packet.IPString(out.SrcIP),
			Dst:       packet.IPString(out.DstIP),
			Proto:     out.Protocol.String(),
			SrcPort:   out.SrcPort,
			DstPort:   out.DstPort,
			Payload:   string(out.Payload),
			LatencyMS: float64(s.sim.Now()-start) / 1e6,
		})
	}
	defer func() { s.emit = nil }()
	sw := s.switches[platName]
	for i := 0; i < count; i++ {
		sw.Process(&packet.Packet{
			Protocol: proto,
			SrcIP:    src,
			DstIP:    dst,
			SrcPort:  req.SrcPort,
			DstPort:  req.DstPort,
			TTL:      64,
			Payload:  []byte(req.Payload),
		})
	}
	// Drain the virtual clock (bounded: batchers may hold packets).
	s.sim.RunUntil(start + 10*60*netsim.Second)
	resp.BootedVM = booted
	if resp.Emitted == nil {
		resp.Emitted = []EmittedPacket{}
	}
	return resp, nil
}
