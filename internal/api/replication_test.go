package api

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"github.com/in-net/innet/internal/controller"
	"github.com/in-net/innet/internal/journal"
	"github.com/in-net/innet/internal/replication"
	"github.com/in-net/innet/internal/topology"
)

// --- client retry-policy regressions (satellite: retry loop) -------

// Any 5xx except 501 is transient; 4xx (including 413) and 501 are
// terminal. Regression: the old loop only retried 502/503/504, so a
// bare 500 from a controller mid-failover exhausted the client.
func TestClientRetryStatusPolicy(t *testing.T) {
	cases := []struct {
		status int
		retry  bool
	}{
		{http.StatusInternalServerError, true},    // 500
		{http.StatusBadGateway, true},             // 502
		{http.StatusServiceUnavailable, true},     // 503
		{http.StatusInsufficientStorage, true},    // 507
		{http.StatusNotImplemented, false},        // 501: server will never learn it
		{http.StatusRequestEntityTooLarge, false}, // 413: resending cannot shrink it
		{http.StatusUnprocessableEntity, false},   // 422
	}
	for _, tc := range cases {
		t.Run(fmt.Sprint(tc.status), func(t *testing.T) {
			var calls atomic.Int32
			ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
				calls.Add(1)
				w.WriteHeader(tc.status)
				w.Write([]byte(`{"error":"nope"}`))
			}))
			t.Cleanup(ts.Close)
			c := NewClient(ts.URL)
			c.Retries = 2
			c.Sleep = func(time.Duration) {}
			if _, err := c.Health(); err == nil {
				t.Fatalf("HTTP %d reported success", tc.status)
			}
			want := int32(1)
			if tc.retry {
				want = 3 // 1 + 2 retries
			}
			if calls.Load() != want {
				t.Errorf("HTTP %d: calls = %d, want %d", tc.status, calls.Load(), want)
			}
		})
	}
}

// A Retry-After header names the server's own delay; the client obeys
// it (with ±25% jitter) instead of its computed backoff.
func TestClientHonorsRetryAfter(t *testing.T) {
	var calls atomic.Int32
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) == 1 {
			w.Header().Set("Retry-After", "2")
			w.WriteHeader(http.StatusServiceUnavailable)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		w.Write([]byte(`{"status":"ok","platforms":{},"deployments":{}}`))
	}))
	t.Cleanup(ts.Close)

	c := NewClient(ts.URL)
	c.RetryBase = time.Millisecond // would be ~1ms if Retry-After were ignored
	var slept []time.Duration
	c.Sleep = func(d time.Duration) { slept = append(slept, d) }
	if _, err := c.Health(); err != nil {
		t.Fatal(err)
	}
	if len(slept) != 1 {
		t.Fatalf("slept %d times, want 1", len(slept))
	}
	lo, hi := 1500*time.Millisecond, 2500*time.Millisecond
	if slept[0] < lo || slept[0] > hi {
		t.Errorf("slept %v; Retry-After: 2 should put the wait in [%v, %v]", slept[0], lo, hi)
	}
}

// A 307 from a deposed leader re-aims the client at the Location host
// for the retry AND for every subsequent call — the discovered leader
// sticks.
func TestClientFollowsLeaderRedirect(t *testing.T) {
	var leaderCalls atomic.Int32
	leader := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		leaderCalls.Add(1)
		w.Header().Set("Content-Type", "application/json")
		w.Write([]byte(`{"status":"ok","platforms":{},"deployments":{}}`))
	}))
	t.Cleanup(leader.Close)

	var deposedCalls atomic.Int32
	deposed := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		deposedCalls.Add(1)
		w.Header().Set("Location", leader.URL+r.URL.RequestURI())
		w.WriteHeader(http.StatusTemporaryRedirect)
	}))
	t.Cleanup(deposed.Close)

	c := NewClient(deposed.URL)
	c.Sleep = func(d time.Duration) { t.Errorf("slept %v; redirects retry immediately", d) }
	if _, err := c.Health(); err != nil {
		t.Fatal(err)
	}
	if got := deposedCalls.Load(); got != 1 {
		t.Errorf("deposed leader saw %d calls, want 1", got)
	}
	if c.Leader() != leader.URL {
		t.Errorf("Leader() = %q, want %q", c.Leader(), leader.URL)
	}
	// Second call goes straight to the leader.
	if _, err := c.Health(); err != nil {
		t.Fatal(err)
	}
	if got := deposedCalls.Load(); got != 1 {
		t.Errorf("deposed leader saw %d calls after leader discovery, want 1", got)
	}
	if got := leaderCalls.Load(); got != 2 {
		t.Errorf("leader saw %d calls, want 2", got)
	}
}

// Two confused nodes each advertising the other as leader must not
// bounce the client forever: the redirect-hop cap terminates the
// ping-pong with an error, regardless of the retry budget.
func TestClientCapsRedirectPingPong(t *testing.T) {
	var aCalls, bCalls atomic.Int32
	var aURL, bURL string
	a := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		aCalls.Add(1)
		w.Header().Set("Location", bURL+r.URL.RequestURI())
		w.WriteHeader(http.StatusTemporaryRedirect)
	}))
	t.Cleanup(a.Close)
	b := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		bCalls.Add(1)
		w.Header().Set("Location", aURL+r.URL.RequestURI())
		w.WriteHeader(http.StatusTemporaryRedirect)
	}))
	t.Cleanup(b.Close)
	aURL, bURL = a.URL, b.URL

	c := NewClient(a.URL)
	c.Retries = 1000 // the hop cap, not the retry budget, must stop the loop
	c.Sleep = func(d time.Duration) { t.Errorf("slept %v; redirects retry immediately", d) }
	_, err := c.Health()
	if err == nil {
		t.Fatal("ping-pong redirect chain returned success")
	}
	if !strings.Contains(err.Error(), "redirect") {
		t.Errorf("error %q does not mention redirects", err)
	}
	if total := aCalls.Load() + bCalls.Load(); total > 10 {
		t.Errorf("client made %d requests chasing the loop, want a handful", total)
	}
}

// When the redirect-discovered leader dies, a connection-refused error
// resets the sticky base: the client falls back to its configured
// BaseURL instead of hammering a dead address until the retry budget
// runs out.
func TestClientFallsBackWhenLeaderDies(t *testing.T) {
	home := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		w.Write([]byte(`{"status":"ok","platforms":{},"deployments":{}}`))
	}))
	t.Cleanup(home.Close)

	// A real listener that closes: its port refuses connections after.
	dead := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {}))
	deadURL := dead.URL
	dead.Close()

	c := NewClient(home.URL)
	c.Retries = 0 // the fallback must not need the retry budget
	c.Sleep = func(d time.Duration) { t.Errorf("slept %v; fallback re-aims immediately", d) }
	c.setLeader(deadURL)
	if _, err := c.Health(); err != nil {
		t.Fatalf("health after leader death: %v", err)
	}
	if c.Leader() != "" {
		t.Errorf("Leader() = %q after fallback, want cleared", c.Leader())
	}
}

// --- server role-awareness ----------------------------------------

// replNode builds a controller + journal store + replication node for
// server tests.
func replNode(t *testing.T, cfg replication.Config) (*controller.Controller, *journal.Store, *replication.Node) {
	t.Helper()
	topo, err := topology.PaperFig3()
	if err != nil {
		t.Fatal(err)
	}
	ctl, err := controller.New(topo, "")
	if err != nil {
		t.Fatal(err)
	}
	store, err := journal.Open(t.TempDir(), journal.Options{
		Sync: journal.SyncNone, CompactEvery: -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { store.Close() })
	if cfg.AckTimeout == 0 {
		cfg.AckTimeout = 3 * time.Second
	}
	if cfg.HeartbeatEvery == 0 {
		cfg.HeartbeatEvery = 20 * time.Millisecond
	}
	if cfg.RedialEvery == 0 {
		cfg.RedialEvery = 10 * time.Millisecond
	}
	cfg.Logf = t.Logf
	node, err := replication.NewNode(store, ctl, cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { node.Close() })
	ctl.AttachJournal(node)
	if err := node.Start(); err != nil {
		t.Fatal(err)
	}
	return ctl, store, node
}

// A standby that has not heard from any leader refuses mutations with
// 503 + Retry-After; reads still work and health advertises the role.
func TestStandbyWithoutLeaderRefusesMutations(t *testing.T) {
	ctl, _, node := replNode(t, replication.Config{
		Role:       controller.RoleStandby,
		ListenAddr: "127.0.0.1:0",
	})
	srv := NewServer(ctl)
	srv.AttachReplication(node)
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)

	resp, err := http.Post(ts.URL+"/v1/modules", "application/json", strings.NewReader(`{}`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("POST on standby = HTTP %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("503 from standby is missing Retry-After")
	}

	// DELETE is gated too.
	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/modules/pm-1", nil)
	dresp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	dresp.Body.Close()
	if dresp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("DELETE on standby = HTTP %d, want 503", dresp.StatusCode)
	}

	// Reads pass through, and health advertises the role.
	hr, err := http.Get(ts.URL + "/v1/health")
	if err != nil {
		t.Fatal(err)
	}
	defer hr.Body.Close()
	var h HealthResponse
	if err := json.NewDecoder(hr.Body).Decode(&h); err != nil {
		t.Fatal(err)
	}
	if h.Replication == nil || h.Replication.Role != "standby" {
		t.Fatalf("health replication = %+v, want role standby", h.Replication)
	}
}

// With a live leader, the standby's 307 carries the leader's
// advertised URL — and the api.Client rides the redirect end-to-end:
// a deploy POSTed at the standby lands on the leader.
func TestStandbyRedirectsDeployToLeader(t *testing.T) {
	standbyCtl, _, standbyNode := replNode(t, replication.Config{
		Role:       controller.RoleStandby,
		ListenAddr: "127.0.0.1:0",
	})
	standbySrv := NewServer(standbyCtl)
	standbySrv.AttachReplication(standbyNode)
	standbyTS := httptest.NewServer(standbySrv)
	t.Cleanup(standbyTS.Close)

	// The leader's client-facing URL must be known before its node is
	// built (AdvertiseURL travels in the replication handshake), so
	// its HTTP server comes up first.
	topo, err := topology.PaperFig3()
	if err != nil {
		t.Fatal(err)
	}
	leaderCtl, err := controller.New(topo, "")
	if err != nil {
		t.Fatal(err)
	}
	leaderSrv := NewServer(leaderCtl)
	leaderTS := httptest.NewServer(leaderSrv)
	t.Cleanup(leaderTS.Close)
	leaderStore, err := journal.Open(t.TempDir(), journal.Options{Sync: journal.SyncNone, CompactEvery: -1})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { leaderStore.Close() })
	leaderNode, err := replication.NewNode(leaderStore, leaderCtl, replication.Config{
		Role:           controller.RoleLeader,
		Peers:          []string{standbyNode.Addr()},
		AdvertiseURL:   leaderTS.URL,
		AckTimeout:     3 * time.Second,
		HeartbeatEvery: 20 * time.Millisecond,
		RedialEvery:    10 * time.Millisecond,
		Logf:           t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { leaderNode.Close() })
	leaderCtl.AttachJournal(leaderNode)
	if err := leaderNode.Start(); err != nil {
		t.Fatal(err)
	}
	leaderSrv.AttachReplication(leaderNode)

	// Wait for the standby to learn who the leader is.
	deadline := time.Now().Add(5 * time.Second)
	for standbyNode.Leader() == "" {
		if time.Now().After(deadline) {
			t.Fatal("standby never learned the leader URL")
		}
		time.Sleep(5 * time.Millisecond)
	}

	c := NewClient(standbyTS.URL)
	c.Sleep = func(time.Duration) {}
	req := DeployRequest{
		Tenant:     "alice",
		ModuleName: "Batcher",
		Config:     batcher,
		Requirements: `
reach from internet udp -> Batcher:dst:0 dst 10.1.15.133 -> client dst port 1500
`,
		Trust: "client",
	}
	dep, err := c.Deploy(req)
	if err != nil {
		t.Fatal(err)
	}
	if c.Leader() != leaderTS.URL {
		t.Errorf("client leader = %q, want %q", c.Leader(), leaderTS.URL)
	}
	if _, ok := leaderCtl.Get(dep.ID); !ok {
		t.Errorf("deployment %s not on the leader", dep.ID)
	}
	// The replicated admission reached the standby too (sync ship).
	if _, ok := standbyCtl.Get(dep.ID); !ok {
		t.Errorf("deployment %s not replicated to the standby", dep.ID)
	}

	// An identical retry (a client replaying through a failover)
	// reuses the admission: HTTP 200, same deployment.
	again, err := c.Deploy(req)
	if err != nil {
		t.Fatal(err)
	}
	if again.ID != dep.ID {
		t.Errorf("idempotent replay created %s, want %s", again.ID, dep.ID)
	}
}

// A wedged journal surfaces in /v1/health Errors and degrades status.
func TestHealthSurfacesWedgedJournal(t *testing.T) {
	topo, err := topology.PaperFig3()
	if err != nil {
		t.Fatal(err)
	}
	ctl, err := controller.New(topo, "")
	if err != nil {
		t.Fatal(err)
	}
	srv := NewServer(ctl)
	srv.AttachJournal(wedgedStub{})
	wts := httptest.NewServer(srv)
	t.Cleanup(wts.Close)

	hr, err := http.Get(wts.URL + "/v1/health")
	if err != nil {
		t.Fatal(err)
	}
	defer hr.Body.Close()
	var h HealthResponse
	if err := json.NewDecoder(hr.Body).Decode(&h); err != nil {
		t.Fatal(err)
	}
	if h.Status != "degraded" {
		t.Errorf("status = %q, want degraded", h.Status)
	}
	found := false
	for _, e := range h.Errors {
		if strings.Contains(e, "wedged") {
			found = true
		}
	}
	if !found {
		t.Errorf("errors = %v, want a journal-wedged entry", h.Errors)
	}
}

type wedgedStub struct{}

func (wedgedStub) Wedged() error { return fmt.Errorf("disk gone") }
