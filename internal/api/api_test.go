package api

import (
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"github.com/in-net/innet/internal/controller"
	_ "github.com/in-net/innet/internal/elements"
	"github.com/in-net/innet/internal/journal"
	"github.com/in-net/innet/internal/topology"
)

const batcher = `
FromNetfront() ->
IPFilter(allow udp port 1500) ->
IPRewriter(pattern - - 10.1.15.133 - 0 0)
-> TimedUnqueue(120,100)
-> dst::ToNetfront()
`

func newTestServer(t *testing.T) (*httptest.Server, *Client) {
	t.Helper()
	topo, err := topology.PaperFig3()
	if err != nil {
		t.Fatal(err)
	}
	ctl, err := controller.New(topo, "")
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(NewServer(ctl))
	t.Cleanup(ts.Close)
	return ts, NewClient(ts.URL)
}

func TestDeployListKillOverHTTP(t *testing.T) {
	_, c := newTestServer(t)
	dep, err := c.Deploy(DeployRequest{
		Tenant:     "alice",
		ModuleName: "Batcher",
		Config:     batcher,
		Requirements: `
reach from internet udp -> Batcher:dst:0 dst 10.1.15.133 -> client dst port 1500
`,
		Trust: "client",
	})
	if err != nil {
		t.Fatal(err)
	}
	if dep.Platform != "Platform3" || dep.ID == "" {
		t.Errorf("deploy = %+v", dep)
	}
	if dep.CompileMS <= 0 || dep.CheckMS <= 0 {
		t.Errorf("timings = %+v", dep)
	}
	mods, err := c.List()
	if err != nil {
		t.Fatal(err)
	}
	if len(mods) != 1 || mods[0].ID != dep.ID || mods[0].Tenant != "alice" {
		t.Errorf("list = %+v", mods)
	}
	if err := c.Kill(dep.ID); err != nil {
		t.Fatal(err)
	}
	mods, _ = c.List()
	if len(mods) != 0 {
		t.Error("kill did not remove module")
	}
	if err := c.Kill(dep.ID); err == nil {
		t.Error("double kill accepted")
	}
}

func TestRejectionMapsTo422(t *testing.T) {
	_, c := newTestServer(t)
	_, err := c.Deploy(DeployRequest{
		Tenant: "mallory", ModuleName: "atk", Trust: "third-party",
		Config: `
in :: FromNetfront();
a :: SetIPDst(203.0.113.9);
out :: ToNetfront();
in -> a -> out;
`,
	})
	if err == nil {
		t.Fatal("attack module deployed")
	}
	if !strings.Contains(err.Error(), "422") {
		t.Errorf("error = %v", err)
	}
}

func TestBadRequests(t *testing.T) {
	ts, c := newTestServer(t)
	if _, err := c.Deploy(DeployRequest{Trust: "sudo"}); err == nil {
		t.Error("bad trust accepted")
	}
	// Malformed JSON.
	resp, err := ts.Client().Post(ts.URL+"/v1/modules", "application/json", strings.NewReader("{"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 400 {
		t.Errorf("status = %d", resp.StatusCode)
	}
	// Wrong method.
	req, _ := ts.Client().Head(ts.URL + "/v1/modules")
	if req.StatusCode != 405 {
		t.Errorf("HEAD status = %d", req.StatusCode)
	}
}

func TestClassesEndpoint(t *testing.T) {
	_, c := newTestServer(t)
	classes, err := c.Classes()
	if err != nil {
		t.Fatal(err)
	}
	if len(classes) < 20 {
		t.Errorf("classes = %d", len(classes))
	}
}

func TestGetModuleByID(t *testing.T) {
	ts, c := newTestServer(t)
	dep, err := c.Deploy(DeployRequest{
		Tenant: "bob", ModuleName: "dns", Stock: "geo-dns", Trust: "third-party",
	})
	if err != nil {
		t.Fatal(err)
	}
	resp, err := ts.Client().Get(ts.URL + "/v1/modules/" + dep.ID)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Errorf("status = %d", resp.StatusCode)
	}
	resp2, _ := ts.Client().Get(ts.URL + "/v1/modules/nope")
	resp2.Body.Close()
	if resp2.StatusCode != 404 {
		t.Errorf("missing module status = %d", resp2.StatusCode)
	}
}

func TestParseTrust(t *testing.T) {
	for in, ok := range map[string]bool{
		"": true, "client": true, "Operator": true, "third-party": true,
		"root": false,
	} {
		if _, err := ParseTrust(in); (err == nil) != ok {
			t.Errorf("ParseTrust(%q) err=%v", in, err)
		}
	}
}

func TestQueryEndpoint(t *testing.T) {
	ts, c := newTestServer(t)
	res, err := c.Query("reach from client udp -> internet")
	if err != nil {
		t.Fatal(err)
	}
	if !res.Satisfied || res.CheckMS <= 0 {
		t.Errorf("query = %+v", res)
	}
	res2, err := c.Query("reach from internet udp -> HTTPOptimizer -> client")
	if err != nil {
		t.Fatal(err)
	}
	if res2.Satisfied || res2.Reason == "" {
		t.Errorf("impossible query = %+v", res2)
	}
	if _, err := c.Query("nonsense"); err == nil {
		t.Error("bad query accepted")
	}
	// Wrong method.
	resp, err := ts.Client().Get(ts.URL + "/v1/query")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 405 {
		t.Errorf("GET query status = %d", resp.StatusCode)
	}
}

func TestHealthz(t *testing.T) {
	ts, _ := newTestServer(t)
	resp, err := ts.Client().Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Errorf("healthz = %d", resp.StatusCode)
	}
}

func TestOversizedBodyMapsTo413(t *testing.T) {
	ts, _ := newTestServer(t)
	// Valid JSON throughout, so the decoder keeps reading until the
	// byte cap — not a syntax error — stops it.
	big := `{"config":"` + strings.Repeat("x", MaxRequestBody+1) + `"}`
	for _, path := range []string{"/v1/modules", "/v1/query"} {
		resp, err := ts.Client().Post(ts.URL+path, "application/json", strings.NewReader(big))
		if err != nil {
			t.Fatal(err)
		}
		var e ErrorResponse
		derr := json.NewDecoder(resp.Body).Decode(&e)
		resp.Body.Close()
		if resp.StatusCode != http.StatusRequestEntityTooLarge {
			t.Errorf("%s: status = %d, want 413", path, resp.StatusCode)
		}
		if derr != nil || !strings.Contains(e.Error, "exceeds") {
			t.Errorf("%s: error body = %+v (%v)", path, e, derr)
		}
	}
}

func TestDeployTimeoutMapsTo503AndRollsBack(t *testing.T) {
	topo, err := topology.PaperFig3()
	if err != nil {
		t.Fatal(err)
	}
	ctl, err := controller.New(topo, "")
	if err != nil {
		t.Fatal(err)
	}
	srv := NewServer(ctl)
	srv.SetDeployTimeout(10 * time.Millisecond)
	release := make(chan struct{})
	rolledBack := make(chan struct{})
	srv.testSlowDeploy = func() { <-release }
	srv.testRollbackDone = func() { close(rolledBack) }
	ts := httptest.NewServer(srv)
	defer ts.Close()
	c := NewClient(ts.URL)
	c.Retries = 0 // a retried 503 would pile up more blocked workers

	_, err = c.Deploy(DeployRequest{Tenant: "slow", ModuleName: "m", Config: batcher, Trust: "client"})
	if err == nil {
		t.Fatal("slow deploy did not time out")
	}
	if !strings.Contains(err.Error(), "503") || !strings.Contains(err.Error(), "timed out") {
		t.Errorf("error = %v", err)
	}

	// Let the abandoned worker finish: its late success must be
	// rolled back so the 503 the client saw stays true.
	close(release)
	select {
	case <-rolledBack:
	case <-time.After(5 * time.Second):
		t.Fatal("rollback never ran")
	}
	if live := len(ctl.Deployments()); live != 0 {
		t.Fatalf("late deployment not rolled back: %d live", live)
	}
	if ctl.Placed != 1 {
		t.Errorf("Placed = %d, want 1 (worker did place before rollback)", ctl.Placed)
	}
}

// killFailJournal admits fine but refuses kill appends, simulating a
// journal disk that filled up after admission: the write-ahead kill
// cannot be made durable, so Kill fails.
type killFailJournal struct{}

func (killFailJournal) Append(r journal.Record) error {
	if r.Type == journal.EvKill {
		return errors.New("disk full")
	}
	return nil
}

func TestDeployTimeoutRollbackFailureSurfacesInHealth(t *testing.T) {
	topo, err := topology.PaperFig3()
	if err != nil {
		t.Fatal(err)
	}
	ctl, err := controller.New(topo, "")
	if err != nil {
		t.Fatal(err)
	}
	ctl.AttachJournal(killFailJournal{})
	srv := NewServer(ctl)
	srv.SetDeployTimeout(10 * time.Millisecond)
	release := make(chan struct{})
	rolledBack := make(chan struct{})
	srv.testSlowDeploy = func() { <-release }
	srv.testRollbackDone = func() { close(rolledBack) }
	ts := httptest.NewServer(srv)
	defer ts.Close()
	c := NewClient(ts.URL)
	c.Retries = 0

	if _, err := c.Deploy(DeployRequest{Tenant: "slow", ModuleName: "m", Config: batcher, Trust: "client"}); err == nil {
		t.Fatal("slow deploy did not time out")
	}
	close(release)
	select {
	case <-rolledBack:
	case <-time.After(5 * time.Second):
		t.Fatal("rollback never ran")
	}

	// The kill's write-ahead append failed, so the late placement is
	// still live — a zombie the 503 promised was rolled back. It must
	// at least be observable: health degrades and reports the fault.
	if live := len(ctl.Deployments()); live != 1 {
		t.Fatalf("deployments = %d, want 1 (kill cannot be journaled)", live)
	}
	h, err := c.Health()
	if err != nil {
		t.Fatal(err)
	}
	if h.Status != "degraded" {
		t.Errorf("health status = %q, want degraded", h.Status)
	}
	found := false
	for _, e := range h.Errors {
		if strings.Contains(e, "rollback failed") {
			found = true
		}
	}
	if !found {
		t.Errorf("health errors = %v, want a deploy-timeout rollback failure", h.Errors)
	}
}
