package api

import (
	"net/http/httptest"
	"strings"
	"testing"

	"github.com/in-net/innet/internal/controller"
	"github.com/in-net/innet/internal/topology"
)

func newSimulatedServer(t *testing.T) (*httptest.Server, *Client) {
	t.Helper()
	topo, err := topology.PaperFig3()
	if err != nil {
		t.Fatal(err)
	}
	ctl, err := controller.New(topo, "")
	if err != nil {
		t.Fatal(err)
	}
	sim := NewSimulator(topo.Platforms())
	ts := httptest.NewServer(NewServerWithSimulator(ctl, sim))
	t.Cleanup(ts.Close)
	return ts, NewClient(ts.URL)
}

func TestSimulatedDeployAndInject(t *testing.T) {
	_, c := newSimulatedServer(t)
	dep, err := c.Deploy(DeployRequest{
		Tenant: "alice", ModuleName: "Batcher", Trust: "client",
		Config: `
FromNetfront() ->
IPFilter(allow udp port 1500) ->
IPRewriter(pattern - - 10.1.15.133 - 0 0)
-> TimedUnqueue(2,100)
-> dst::ToNetfront()
`,
	})
	if err != nil {
		t.Fatal(err)
	}
	// UDP on the right port: batched, rewritten, emitted.
	res, err := c.Inject(InjectRequest{
		Dst: dep.Addr, Proto: "udp", DstPort: 1500, Payload: "ping", Count: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Sent != 2 || len(res.Emitted) != 2 || !res.BootedVM {
		t.Fatalf("inject = %+v", res)
	}
	for _, e := range res.Emitted {
		if e.Dst != "10.1.15.133" || e.Payload != "ping" {
			t.Errorf("emitted = %+v", e)
		}
		// The 2 s batching interval shows up as virtual latency.
		if e.LatencyMS < 2000 {
			t.Errorf("latency = %.1f ms, batching not visible", e.LatencyMS)
		}
	}
	// TCP is filtered by the module.
	res2, err := c.Inject(InjectRequest{Dst: dep.Addr, Proto: "tcp", DstPort: 1500})
	if err != nil {
		t.Fatal(err)
	}
	if len(res2.Emitted) != 0 {
		t.Errorf("tcp passed the filter: %+v", res2.Emitted)
	}
	if res2.BootedVM {
		t.Error("vm should already be resident")
	}
	// Kill unregisters the module from the simulation.
	if err := c.Kill(dep.ID); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Inject(InjectRequest{Dst: dep.Addr}); err == nil {
		t.Error("inject after kill accepted")
	}
}

func TestInjectValidation(t *testing.T) {
	_, c := newSimulatedServer(t)
	cases := []InjectRequest{
		{Dst: "not-an-ip"},
		{Dst: "203.0.113.1"}, // no module there
		{Dst: "198.51.100.1", Proto: "carrier-pigeon"},
		{Dst: "198.51.100.1", Count: 1 << 20},
		{Dst: "198.51.100.1", Src: "nope"},
	}
	for i, req := range cases {
		if _, err := c.Inject(req); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
}

func TestInjectWithoutSimulatorIs501(t *testing.T) {
	_, c := newTestServer(t) // no simulator attached
	_, err := c.Inject(InjectRequest{Dst: "198.51.100.1"})
	if err == nil || !strings.Contains(err.Error(), "501") {
		t.Errorf("err = %v", err)
	}
}

func TestSimulatedSandboxedTunnel(t *testing.T) {
	// The runtime enforcement story over HTTP: a sandboxed tunnel's
	// enforcer blocks unauthorized inner destinations.
	_, c := newSimulatedServer(t)
	dep, err := c.Deploy(DeployRequest{
		Tenant: "bob", ModuleName: "tun", Trust: "third-party",
		Whitelist: []string{"192.0.2.1"},
		Config: `
in :: FromNetfront();
dec :: IPDecap();
snat :: SetIPSrc($MODULE_IP);
out :: ToNetfront();
in -> dec -> snat -> out;
`,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !dep.Sandboxed {
		t.Fatal("tunnel not sandboxed")
	}
	// Inject a packet whose payload is NOT a valid inner packet: the
	// decapsulator drops it, nothing escapes.
	res, err := c.Inject(InjectRequest{Dst: dep.Addr, Payload: "garbage"})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Emitted) != 0 {
		t.Errorf("malformed tunnel payload emitted: %+v", res.Emitted)
	}
}
