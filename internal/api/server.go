package api

import (
	"encoding/json"
	"errors"
	"fmt"
	"log"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"time"

	"github.com/in-net/innet/internal/controller"
	"github.com/in-net/innet/internal/packet"
	"github.com/in-net/innet/internal/replication"
	"github.com/in-net/innet/internal/security"
	"github.com/in-net/innet/internal/telemetry"

	"github.com/in-net/innet/internal/click"
)

// MaxRequestBody caps every JSON request body. Module configs are
// text; anything past this is either abuse or a mistake, and gets a
// 413 before the decoder buffers it.
const MaxRequestBody = 1 << 20

// DefaultDeployTimeout bounds one POST /v1/modules admission. The
// symbolic-execution budget (controller.Options) already bounds the
// work; this is the client-facing backstop that turns a slow
// admission into a 503 instead of a hung connection.
const DefaultDeployTimeout = 30 * time.Second

// Server exposes a controller over HTTP.
type Server struct {
	ctl *controller.Controller
	sim *Simulator
	mux *http.ServeMux

	deployTimeout time.Duration
	// testSlowDeploy, when set, runs inside the deploy worker before
	// admission starts — a deterministic way for tests to hold the
	// worker past the timeout. testRollbackDone fires after a
	// timed-out worker's outcome has been discarded.
	testSlowDeploy   func()
	testRollbackDone func()

	// mu guards rollbackErr: the first deploy-timeout rollback whose
	// Kill failed, leaving a zombie deployment the client was told was
	// rolled back. Surfaced by GET /v1/health.
	mu          sync.Mutex
	rollbackErr error

	// reg/tracer back GET /v1/metrics and GET /v1/traces and drive the
	// per-endpoint request instrumentation; nil leaves those endpoints
	// answering 501 and the middleware a single nil check. Set by
	// AttachTelemetry before serving.
	reg    *telemetry.Registry
	tracer *telemetry.Tracer

	// drops/recorder back GET /v1/health's drop rollup and GET
	// /v1/events; nil leaves /v1/events answering 501. Set by
	// AttachObservability before serving.
	drops    *telemetry.Drops
	recorder *telemetry.Recorder

	// repl, when set, makes the server role-aware: mutating requests
	// on a standby or fenced node are redirected (307 with Location)
	// to the advertised leader, or refused (503 with Retry-After) when
	// no leader is known. Set by AttachReplication before serving.
	repl *replication.Node
	// wedged, when set, lets GET /v1/health surface a wedged journal.
	// Set by AttachJournal before serving.
	wedged Wedger
}

// Wedger reports a permanently-failed (wedged) journal; nil means the
// journal is healthy. *journal.Store implements it.
type Wedger interface {
	Wedged() error
}

// NewServer wraps a controller.
func NewServer(ctl *controller.Controller) *Server {
	return NewServerWithSimulator(ctl, nil)
}

// NewServerWithSimulator additionally attaches an embedded dataplane
// emulation: deployments are registered on simulated platforms and
// POST /v1/inject drives test traffic through them.
func NewServerWithSimulator(ctl *controller.Controller, sim *Simulator) *Server {
	s := &Server{ctl: ctl, sim: sim, mux: http.NewServeMux(), deployTimeout: DefaultDeployTimeout}
	s.mux.HandleFunc("/v1/modules", s.modules)
	s.mux.HandleFunc("/v1/modules/", s.moduleByID)
	s.mux.HandleFunc("/v1/classes", s.classes)
	s.mux.HandleFunc("/v1/query", s.query)
	s.mux.HandleFunc("/v1/inject", s.inject)
	s.mux.HandleFunc("/v1/health", s.health)
	s.mux.HandleFunc("/v1/metrics", s.metrics)
	s.mux.HandleFunc("/v1/traces", s.traces)
	s.mux.HandleFunc("/v1/pathtrace", s.pathtrace)
	s.mux.HandleFunc("/v1/events", s.events)
	s.mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprintln(w, "ok")
	})
	return s
}

// AttachTelemetry wires a metrics registry and trace ring into the
// server: GET /v1/metrics serves the registry's Prometheus text, GET
// /v1/traces the ring's recent admission traces, and every endpoint
// gains request counters and latency histograms. Either argument may
// be nil. Call before serving requests.
func (s *Server) AttachTelemetry(r *telemetry.Registry, tr *telemetry.Tracer) {
	s.reg = r
	s.tracer = tr
}

// AttachObservability wires the unified drop-attribution hub and the
// flight recorder into the server: GET /v1/health gains the
// drop_reasons rollup and GET /v1/events serves the recorder's recent
// events. Either argument may be nil. Call before serving.
func (s *Server) AttachObservability(d *telemetry.Drops, rec *telemetry.Recorder) {
	s.drops = d
	s.recorder = rec
}

// SetDeployTimeout overrides the per-request admission deadline. Zero
// or negative disables the bound.
func (s *Server) SetDeployTimeout(d time.Duration) {
	s.deployTimeout = d
}

// AttachReplication makes the server role-aware: GET /v1/health
// advertises the node's replication role, and mutating endpoints on a
// non-leader answer 307 (leader known) or 503 + Retry-After (leader
// unknown) instead of diverging history. Call before serving.
func (s *Server) AttachReplication(n *replication.Node) {
	s.repl = n
}

// AttachJournal lets GET /v1/health surface a wedged journal in its
// Errors list. Call before serving.
func (s *Server) AttachJournal(w Wedger) {
	s.wedged = w
}

// notLeader intercepts a mutating request on a node that cannot
// currently append: a standby or fenced leader redirects the client
// to the advertised leader with 307 (the method and body must be
// replayed verbatim, which 307 mandates), or refuses with 503 and
// Retry-After when no leader is known yet (mid-election). Reports
// true when the request was answered.
func (s *Server) notLeader(w http.ResponseWriter, r *http.Request) bool {
	if s.repl == nil {
		return false
	}
	info := s.repl.Info()
	if info.Role == controller.RoleLeader.String() && !info.Fenced {
		return false
	}
	if info.LeaderURL != "" {
		w.Header().Set("Location", strings.TrimRight(info.LeaderURL, "/")+r.URL.RequestURI())
		writeErr(w, http.StatusTemporaryRedirect,
			fmt.Errorf("not the leader (role %s, term %d); leader is %s", info.Role, info.Term, info.LeaderURL))
		return true
	}
	w.Header().Set("Retry-After", "1")
	writeErr(w, http.StatusServiceUnavailable,
		fmt.Errorf("not the leader (role %s, term %d) and no leader is known yet; retry shortly", info.Role, info.Term))
	return true
}

// ServeHTTP implements http.Handler. With telemetry attached it also
// records one request counter sample (endpoint, method, status) and
// one latency sample (endpoint) per request.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if s.reg == nil {
		s.mux.ServeHTTP(w, r)
		return
	}
	start := time.Now()
	rec := &statusRecorder{ResponseWriter: w, code: http.StatusOK}
	s.mux.ServeHTTP(rec, r)
	ep := normalizeEndpoint(r.URL.Path)
	s.reg.Counter("innet_api_requests_total",
		"API requests by endpoint, method and status code.",
		"endpoint", ep, "method", r.Method, "code", strconv.Itoa(rec.code)).Inc()
	s.reg.Histogram("innet_api_request_seconds",
		"API request latency by endpoint.", nil,
		"endpoint", ep).Observe(time.Since(start).Seconds())
}

// statusRecorder captures the response status for the request metrics.
type statusRecorder struct {
	http.ResponseWriter
	code int
}

func (r *statusRecorder) WriteHeader(code int) {
	r.code = code
	r.ResponseWriter.WriteHeader(code)
}

// normalizeEndpoint collapses parameterized paths so the endpoint
// label stays low-cardinality no matter what clients request.
func normalizeEndpoint(path string) string {
	if strings.HasPrefix(path, "/v1/modules/") {
		return "/v1/modules/{id}"
	}
	switch path {
	case "/v1/modules", "/v1/classes", "/v1/query", "/v1/inject",
		"/v1/health", "/v1/metrics", "/v1/traces", "/v1/pathtrace",
		"/v1/events", "/healthz":
		return path
	}
	return "other"
}

// PrometheusContentType is the exposition content type served by
// GET /v1/metrics (Prometheus text format v0.0.4).
const PrometheusContentType = "text/plain; version=0.0.4; charset=utf-8"

func (s *Server) metrics(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeErr(w, http.StatusMethodNotAllowed, fmt.Errorf("method %s not allowed", r.Method))
		return
	}
	if s.reg == nil {
		writeErr(w, http.StatusNotImplemented, fmt.Errorf("telemetry is not enabled on this server"))
		return
	}
	w.Header().Set("Content-Type", PrometheusContentType)
	_ = s.reg.WritePrometheus(w)
}

// DefaultTraceFetch is how many traces GET /v1/traces returns when
// the n query parameter is absent.
const DefaultTraceFetch = 32

func (s *Server) traces(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeErr(w, http.StatusMethodNotAllowed, fmt.Errorf("method %s not allowed", r.Method))
		return
	}
	if s.tracer == nil {
		writeErr(w, http.StatusNotImplemented, fmt.Errorf("tracing is not enabled on this server"))
		return
	}
	n, ok := fetchN(w, r)
	if !ok {
		return
	}
	out := s.tracer.Recent(n)
	if out == nil {
		out = []telemetry.Trace{}
	}
	writeJSON(w, http.StatusOK, TracesResponse{Traces: out})
}

// fetchN parses the shared n query parameter (how many entries to
// return; 0 = all retained) with DefaultTraceFetch as the absent
// default. Reports false after writing the 400 itself.
func fetchN(w http.ResponseWriter, r *http.Request) (int, bool) {
	n := DefaultTraceFetch
	if q := r.URL.Query().Get("n"); q != "" {
		v, err := strconv.Atoi(q)
		if err != nil || v < 0 {
			writeErr(w, http.StatusBadRequest, fmt.Errorf("bad n %q (want a non-negative integer; 0 = all)", q))
			return 0, false
		}
		n = v
	}
	return n, true
}

func (s *Server) pathtrace(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeErr(w, http.StatusMethodNotAllowed, fmt.Errorf("method %s not allowed", r.Method))
		return
	}
	if s.sim == nil {
		writeErr(w, http.StatusNotImplemented, fmt.Errorf("path tracing needs the embedded dataplane (start innetd with -simulate)"))
		return
	}
	module := r.URL.Query().Get("module")
	if module == "" {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("missing module query parameter"))
		return
	}
	n, ok := fetchN(w, r)
	if !ok {
		return
	}
	// Resolve by deployment ID first, then by module name — both are
	// unique, and operators hold whichever the deploy response gave
	// them.
	dep, found := s.ctl.Get(module)
	if !found {
		for _, d := range s.ctl.Deployments() {
			if d.ModuleName == module {
				dep, found = d, true
				break
			}
		}
	}
	if !found {
		writeErr(w, http.StatusNotFound, fmt.Errorf("no deployment %q", module))
		return
	}
	traces := s.sim.PathTraces(dep.Platform, dep.Addr, n)
	if traces == nil {
		traces = []telemetry.PathTrace{}
	}
	writeJSON(w, http.StatusOK, PathTracesResponse{
		Module: dep.ModuleName,
		Addr:   packet.IPString(dep.Addr),
		Traces: traces,
	})
}

func (s *Server) events(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeErr(w, http.StatusMethodNotAllowed, fmt.Errorf("method %s not allowed", r.Method))
		return
	}
	if s.recorder == nil {
		writeErr(w, http.StatusNotImplemented, fmt.Errorf("the flight recorder is not enabled on this server"))
		return
	}
	n, ok := fetchN(w, r)
	if !ok {
		return
	}
	out := s.recorder.Recent(n)
	if out == nil {
		out = []telemetry.Event{}
	}
	writeJSON(w, http.StatusOK, EventsResponse{Events: out})
}

// decodeBody reads a size-capped JSON body into v, writing the error
// response (413 for oversized bodies, 400 otherwise) itself. Returns
// false when the handler should stop.
func decodeBody(w http.ResponseWriter, r *http.Request, v any) bool {
	err := json.NewDecoder(http.MaxBytesReader(w, r.Body, MaxRequestBody)).Decode(v)
	if err == nil {
		return true
	}
	var mbe *http.MaxBytesError
	if errors.As(err, &mbe) {
		writeErr(w, http.StatusRequestEntityTooLarge,
			fmt.Errorf("request body exceeds %d bytes", mbe.Limit))
		return false
	}
	writeErr(w, http.StatusBadRequest, fmt.Errorf("bad JSON: %v", err))
	return false
}

func (s *Server) modules(w http.ResponseWriter, r *http.Request) {
	switch r.Method {
	case http.MethodGet:
		var out []ModuleInfo
		for _, d := range s.ctl.Deployments() {
			out = append(out, moduleInfo(d))
		}
		if out == nil {
			out = []ModuleInfo{}
		}
		writeJSON(w, http.StatusOK, out)
	case http.MethodPost:
		if s.notLeader(w, r) {
			return
		}
		var req DeployRequest
		if !decodeBody(w, r, &req) {
			return
		}
		trust, err := ParseTrust(req.Trust)
		if err != nil {
			writeErr(w, http.StatusBadRequest, err)
			return
		}
		dep, reused, err := s.deployBounded(controller.Request{
			Tenant:       req.Tenant,
			ModuleName:   req.ModuleName,
			Config:       req.Config,
			Stock:        req.Stock,
			Requirements: req.Requirements,
			Trust:        trust,
			Whitelist:    req.Whitelist,
			Transparent:  req.Transparent,
			TraceEvery:   req.TraceEvery,
		})
		if err != nil {
			status := http.StatusInternalServerError
			if _, ok := err.(*controller.RejectionError); ok {
				status = http.StatusUnprocessableEntity
			} else if errors.Is(err, errDeployTimeout) {
				status = http.StatusServiceUnavailable
			} else if errors.Is(err, controller.ErrNotLeader) {
				// Role changed between the gate and the admission;
				// have the client re-resolve the leader.
				status = http.StatusServiceUnavailable
				w.Header().Set("Retry-After", "1")
			}
			writeErr(w, status, err)
			return
		}
		if s.sim != nil && !reused {
			if err := s.sim.Register(dep); err != nil {
				_ = s.ctl.Kill(dep.ID)
				writeErr(w, http.StatusInternalServerError, err)
				return
			}
		}
		// A reused deployment (idempotent replay of a request the
		// controller already admitted, e.g. a client retrying across a
		// failover) answers 200 instead of 201.
		status := http.StatusCreated
		if reused {
			status = http.StatusOK
		}
		writeJSON(w, status, DeployResponse{
			ID:        dep.ID,
			Platform:  dep.Platform,
			Addr:      packet.IPString(dep.Addr),
			Sandboxed: dep.Sandboxed,
			CompileMS: float64(dep.Timings.Compile.Microseconds()) / 1000,
			CheckMS:   float64(dep.Timings.Check.Microseconds()) / 1000,
		})
	default:
		writeErr(w, http.StatusMethodNotAllowed, fmt.Errorf("method %s not allowed", r.Method))
	}
}

var errDeployTimeout = errors.New("admission timed out; the request was abandoned and any late placement is rolled back")

// deployBounded runs one admission under the server's deploy
// timeout. On timeout the worker keeps running (controller calls are
// not interruptible) but its outcome is discarded: a late successful
// placement is killed so the 503 the client saw stays true.
// Admissions are idempotent: a byte-identical retry of a request the
// controller already holds returns the existing deployment (reused =
// true) so clients replaying through a failover don't double-place.
func (s *Server) deployBounded(req controller.Request) (*controller.Deployment, bool, error) {
	if s.deployTimeout <= 0 && s.testSlowDeploy == nil {
		return s.ctl.DeployIdempotent(req)
	}
	type result struct {
		dep    *controller.Deployment
		reused bool
		err    error
	}
	ch := make(chan result, 1)
	go func() {
		if s.testSlowDeploy != nil {
			s.testSlowDeploy()
		}
		dep, reused, err := s.ctl.DeployIdempotent(req)
		ch <- result{dep, reused, err}
	}()
	timeout := s.deployTimeout
	if timeout <= 0 {
		timeout = DefaultDeployTimeout
	}
	timer := time.NewTimer(timeout)
	defer timer.Stop()
	select {
	case res := <-ch:
		return res.dep, res.reused, res.err
	case <-timer.C:
		go func() {
			res := <-ch
			if res.err == nil && res.dep != nil && !res.reused {
				s.rollbackLatePlacement(res.dep.ID)
			}
			if s.testRollbackDone != nil {
				s.testRollbackDone()
			}
		}()
		return nil, false, fmt.Errorf("deploy exceeded %v: %w", timeout, errDeployTimeout)
	}
}

// rollbackLatePlacement kills a deployment that was placed after its
// client already received the 503 promising rollback. Kill is strict
// write-ahead journaled, so it can fail (e.g. journal disk full); in
// that case the zombie deployment must not stay live silently — the
// failure is retried, logged, and surfaced through GET /v1/health.
func (s *Server) rollbackLatePlacement(id string) {
	var lastErr error
	for attempt := 0; attempt < 3; attempt++ {
		if _, ok := s.ctl.Get(id); !ok {
			return // already gone
		}
		if err := s.ctl.Kill(id); err == nil {
			return
		} else {
			lastErr = err
		}
	}
	log.Printf("api: deploy-timeout rollback: kill %s failed: %v", id, lastErr)
	s.mu.Lock()
	if s.rollbackErr == nil {
		s.rollbackErr = fmt.Errorf("deploy-timeout rollback failed, deployment %s is still live: %v", id, lastErr)
	}
	s.mu.Unlock()
}

func (s *Server) moduleByID(w http.ResponseWriter, r *http.Request) {
	id := strings.TrimPrefix(r.URL.Path, "/v1/modules/")
	if id == "" {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("missing module id"))
		return
	}
	switch r.Method {
	case http.MethodDelete:
		if s.notLeader(w, r) {
			return
		}
		dep, ok := s.ctl.Get(id)
		if err := s.ctl.Kill(id); err != nil {
			if errors.Is(err, controller.ErrNotLeader) {
				w.Header().Set("Retry-After", "1")
				writeErr(w, http.StatusServiceUnavailable, err)
				return
			}
			writeErr(w, http.StatusNotFound, err)
			return
		}
		if s.sim != nil && ok {
			s.sim.Unregister(dep)
		}
		w.WriteHeader(http.StatusNoContent)
	case http.MethodGet:
		d, ok := s.ctl.Get(id)
		if !ok {
			writeErr(w, http.StatusNotFound, fmt.Errorf("no deployment %q", id))
			return
		}
		writeJSON(w, http.StatusOK, moduleInfo(d))
	default:
		writeErr(w, http.StatusMethodNotAllowed, fmt.Errorf("method %s not allowed", r.Method))
	}
}

func moduleInfo(d *controller.Deployment) ModuleInfo {
	return ModuleInfo{
		ID:             d.ID,
		Tenant:         d.Tenant,
		ModuleName:     d.ModuleName,
		Platform:       d.Platform,
		Addr:           packet.IPString(d.Addr),
		Sandboxed:      d.Sandboxed,
		Status:         d.Status().String(),
		Dataplane:      d.Dataplane(),
		FallbackReason: d.PipelineFallback,
	}
}

func (s *Server) health(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeErr(w, http.StatusMethodNotAllowed, fmt.Errorf("method %s not allowed", r.Method))
		return
	}
	resp := HealthResponse{
		Status:      "ok",
		Platforms:   s.ctl.PlatformHealth(),
		Deployments: map[string]int{},
	}
	for _, up := range resp.Platforms {
		if !up {
			resp.Status = "degraded"
		}
	}
	for _, d := range s.ctl.Deployments() {
		st := d.Status()
		resp.Deployments[st.String()]++
		if st != controller.StatusActive {
			resp.Status = "degraded"
		}
	}
	cs := s.ctl.CacheStats()
	ms := s.ctl.MemoStats()
	resp.Cache = &CacheInfo{
		Hits:          cs.Hits,
		Misses:        cs.Misses,
		Evictions:     cs.Evictions,
		Invalidations: cs.Invalidations,
		Entries:       cs.Entries,

		MemoHits:        ms.Hits,
		MemoMisses:      ms.Misses,
		MemoUnsupported: ms.Unsupported,
		MemoEvictions:   ms.Evictions,
		MemoEntries:     ms.Entries,
	}
	ps := s.ctl.PipelineStatsSnapshot()
	resp.Pipeline = &PipelineInfo{
		Workers:  ps.Workers,
		Compiled: ps.Compiled,
		Fallback: ps.Fallback,
		Reasons:  ps.Reasons,
		Modules:  ps.Modules,
	}
	if s.sim != nil {
		resp.Drops = s.sim.Drops()
	}
	if s.drops != nil {
		resp.DropReasons = s.drops.Snapshot()
	}
	if err := s.ctl.JournalErr(); err != nil {
		resp.Errors = append(resp.Errors, "journal: "+err.Error())
	}
	if s.wedged != nil {
		if err := s.wedged.Wedged(); err != nil {
			resp.Errors = append(resp.Errors, "journal wedged: "+err.Error())
		}
	}
	if s.repl != nil {
		info := s.repl.Info()
		resp.Replication = &ReplicationInfo{
			Role:        info.Role,
			Term:        info.Term,
			Seq:         info.Seq,
			Fenced:      info.Fenced,
			LeaderURL:   info.LeaderURL,
			LagRecords:  info.LagRecords,
			Peers:       info.Peers,
			ClusterSize: info.ClusterSize,
			Majority:    info.Majority,
		}
		for _, p := range info.PeerDetail {
			resp.Replication.PeerDetail = append(resp.Replication.PeerDetail, PeerInfo{
				Addr:          p.Addr,
				AckedSeq:      p.AckedSeq,
				Lag:           p.Lag,
				Connected:     p.Connected,
				TermConnected: p.TermConnected,
			})
		}
		if info.Fenced {
			resp.Errors = append(resp.Errors, fmt.Sprintf(
				"replication: deposed leader (term %d), node is fenced read-only; writes go to %s", info.Term, info.LeaderURL))
		}
	}
	s.mu.Lock()
	if s.rollbackErr != nil {
		resp.Errors = append(resp.Errors, s.rollbackErr.Error())
	}
	s.mu.Unlock()
	if len(resp.Errors) > 0 {
		resp.Status = "degraded"
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) classes(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, click.Classes())
}

func (s *Server) inject(w http.ResponseWriter, r *http.Request) {
	if s.sim == nil {
		writeErr(w, http.StatusNotImplemented, fmt.Errorf("simulation mode is off (start innetd with -simulate)"))
		return
	}
	if r.Method != http.MethodPost {
		writeErr(w, http.StatusMethodNotAllowed, fmt.Errorf("method %s not allowed", r.Method))
		return
	}
	var req InjectRequest
	if !decodeBody(w, r, &req) {
		return
	}
	resp, err := s.sim.Inject(req)
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) query(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeErr(w, http.StatusMethodNotAllowed, fmt.Errorf("method %s not allowed", r.Method))
		return
	}
	var req QueryRequest
	if !decodeBody(w, r, &req) {
		return
	}
	res, err := s.ctl.Query(req.Requirements)
	if err != nil {
		status := http.StatusInternalServerError
		if _, ok := err.(*controller.RejectionError); ok {
			status = http.StatusBadRequest
		}
		writeErr(w, status, err)
		return
	}
	writeJSON(w, http.StatusOK, QueryResponse{
		Satisfied: res.Satisfied,
		Reason:    res.Reason,
		CompileMS: float64(res.Timings.Compile.Microseconds()) / 1000,
		CheckMS:   float64(res.Timings.Check.Microseconds()) / 1000,
	})
}

// TrustName maps a security class to its wire name.
func TrustName(t security.TrustClass) string {
	switch t {
	case security.Client:
		return "client"
	case security.Operator:
		return "operator"
	default:
		return "third-party"
	}
}

// ParseTrust maps wire trust names to security classes. An empty
// string defaults to third-party (least privilege).
func ParseTrust(s string) (security.TrustClass, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "", "third-party", "thirdparty":
		return security.ThirdParty, nil
	case "client":
		return security.Client, nil
	case "operator":
		return security.Operator, nil
	default:
		return 0, fmt.Errorf("unknown trust class %q", s)
	}
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func writeErr(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, ErrorResponse{Error: err.Error()})
}
