//go:build !race

package bench

// raceEnabled reports that the race detector is instrumenting this
// build.
const raceEnabled = false
