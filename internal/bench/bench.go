// Package bench regenerates every table and figure of the paper's
// evaluation (§6, §7, §8) on this repository's substrates. Each
// harness returns a Table whose rows mirror what the paper plots;
// absolute numbers come from the calibrated models (or real
// measurements of this machine where the experiment is CPU-bound),
// and the shapes — who wins, by what factor, where the knees fall —
// are asserted by the package's tests.
package bench

import (
	"fmt"
	"strings"
)

// Table is one regenerated paper table/figure.
type Table struct {
	// ID is the paper label ("Figure 5", "Table 1", ...).
	ID string
	// Title describes the experiment.
	Title   string
	Columns []string
	Rows    [][]string
	// Notes records calibration/substitution caveats.
	Notes []string
}

// AddRow appends a formatted row.
func (t *Table) AddRow(cells ...string) {
	t.Rows = append(t.Rows, cells)
}

// String renders the table as aligned text.
func (t *Table) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s — %s\n", t.ID, t.Title)
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, r := range t.Rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[min(i, len(widths)-1)], c)
		}
		b.WriteString("\n")
	}
	line(t.Columns)
	seps := make([]string, len(t.Columns))
	for i := range seps {
		seps[i] = strings.Repeat("-", widths[i])
	}
	line(seps)
	for _, r := range t.Rows {
		line(r)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// f1 formats a float with one decimal.
func f1(v float64) string { return fmt.Sprintf("%.1f", v) }

// f2 formats a float with two decimals.
func f2(v float64) string { return fmt.Sprintf("%.2f", v) }

// d formats an integer.
func d(v int) string { return fmt.Sprintf("%d", v) }

// gbps formats bits/s as Gb/s.
func gbps(bps float64) string { return fmt.Sprintf("%.2f", bps/1e9) }

// All runs every experiment at the given scale and returns the
// tables in paper order. quick shrinks the heavyweight sweeps for CI
// runs; full reproduces the paper's parameter ranges.
func All(quick bool) []*Table {
	return []*Table{
		Fig5(quick),
		Fig6(quick),
		Fig7(),
		Fig8(),
		Fig9(),
		Fig10(quick),
		Table1(),
		Fig11(quick),
		Fig12(),
		Fig13(),
		Fig14(quick),
		Fig15(quick),
		Fig16(),
		MAWI(),
		ControllerLatency(),
		HTTPvsHTTPS(),
	}
}
