package bench

import (
	"strconv"
	"testing"
)

func TestAblationConsolidation(t *testing.T) {
	tb := AblationConsolidation()
	if len(tb.Rows) != 2 {
		t.Fatal("rows")
	}
	perClientVMs := cell(t, tb, 0, 1)
	consolidatedVMs := cell(t, tb, 1, 1)
	if perClientVMs != 1000 || consolidatedVMs != 10 {
		t.Errorf("vms: %v vs %v", perClientVMs, consolidatedVMs)
	}
	memPer := cell(t, tb, 0, 3)
	memCons := cell(t, tb, 1, 3)
	if memCons*50 > memPer {
		t.Errorf("consolidation memory win too small: %v vs %v MB", memCons, memPer)
	}
}

func TestAblationSuspendResume(t *testing.T) {
	tb := AblationSuspendResume()
	resume := cell(t, tb, 0, 1)
	boot := cell(t, tb, 1, 1)
	if resume <= 0 || boot <= 0 {
		t.Fatal("latencies")
	}
	if tb.Rows[0][2] != "preserved" {
		t.Error("resume must preserve state")
	}
	if tb.Rows[1][2] == "preserved" {
		t.Error("reboot cannot preserve state")
	}
}

func TestAblationSandbox(t *testing.T) {
	if raceEnabled {
		t.Skip("wall-clock measurement is meaningless under the race detector")
	}
	tb := AblationSandbox(true)
	bare := cell(t, tb, 0, 1)
	enforced := cell(t, tb, 1, 1)
	separate := cell(t, tb, 2, 1)
	if bare >= enforced && bare < enforced*1.15 {
		t.Skipf("bare %v vs enforced %v ns/pkt inside noise; machine under load", bare, enforced)
	}
	if !(bare < enforced && enforced < separate) {
		t.Errorf("ordering: %v %v %v", bare, enforced, separate)
	}
	// The separate-VM relative factor is the §7.2 constant.
	rel, err := strconv.ParseFloat(tb.Rows[2][2][:4], 64)
	if err != nil || rel < 3.0 || rel > 3.6 {
		t.Errorf("separate-VM relative = %v", tb.Rows[2][2])
	}
}
