// Telemetry overhead benchmark: the observability PR's acceptance
// bar is that instrumenting the fast path costs ≤5% dispatch
// throughput. Dispatch counters are atomics the switch maintains
// anyway, and registry metrics are read by callback at scrape time,
// so the honest "enabled" configuration is a registry attached AND a
// scraper rendering the exposition continuously while the senders
// run — the steady state of an operator polling /v1/metrics, tighter
// than any real scrape interval.
package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"github.com/in-net/innet/internal/controller"
	"github.com/in-net/innet/internal/packet"
	"github.com/in-net/innet/internal/pipeline"
	"github.com/in-net/innet/internal/security"
	"github.com/in-net/innet/internal/telemetry"
	"github.com/in-net/innet/internal/topology"
	"github.com/in-net/innet/internal/vswitch"
)

// benchScrapeInterval is how often the enabled-side scraper renders
// the full exposition — far more aggressive than the 10-15s a real
// Prometheus would use.
const benchScrapeInterval = 5 * time.Millisecond

// TelemetryResult is the machine-readable form of the telemetry
// overhead benchmark.
type TelemetryResult struct {
	Format string `json:"format"`

	// Dispatch throughput with no registry vs with a registry attached
	// and a scraper rendering the exposition every 5ms.
	DispatchGoroutines  int     `json:"dispatch_goroutines"`
	DispatchShards      int     `json:"dispatch_shards"`
	DispatchDisabledPPS float64 `json:"dispatch_disabled_pps"`
	DispatchEnabledPPS  float64 `json:"dispatch_enabled_pps"`
	// DispatchOverheadPct is (disabled-enabled)/disabled*100; negative
	// means the enabled run happened to measure faster (noise floor).
	DispatchOverheadPct float64 `json:"dispatch_overhead_pct"`
	Scrapes             uint64  `json:"scrapes"`

	// Admission deploy+kill throughput without vs with stage
	// histograms and the span tracer attached.
	AdmissionDisabledOpsPerSec float64 `json:"admission_disabled_ops_per_sec"`
	AdmissionEnabledOpsPerSec  float64 `json:"admission_enabled_ops_per_sec"`
	AdmissionOverheadPct       float64 `json:"admission_overhead_pct"`

	// Compiled-pipeline dispatch with flow-sampled path tracing dark
	// vs armed at the default 1-in-N rate, burst heads rotated through
	// all flows so the sampler fires at its steady-state frequency.
	// The acceptance bar is ≤5% overhead.
	PathTraceEvery       int     `json:"pathtrace_every"`
	PathTraceBatch       int     `json:"pathtrace_batch"`
	PathTraceDisabledPPS float64 `json:"pathtrace_disabled_pps"`
	PathTraceEnabledPPS  float64 `json:"pathtrace_enabled_pps"`
	PathTraceOverheadPct float64 `json:"pathtrace_overhead_pct"`
	// PathTraces counts complete traces the armed side committed.
	PathTraces uint64 `json:"pathtraces"`

	GOMAXPROCS int `json:"gomaxprocs"`
	NumCPU     int `json:"num_cpu"`
}

// measureDispatchTelemetry is measureDispatch with an optional
// registry + continuous scraper attached. Returns the elapsed send
// time and the number of exposition renders that ran during it.
func measureDispatchTelemetry(shards, g, perG int, enabled bool) (time.Duration, uint64) {
	s := vswitch.NewSharded(shards)
	mod := packet.MustParseIP("198.51.100.10")
	s.Install(vswitch.Rule{Priority: 10, Match: vswitch.Match{DstIP: mod}, Action: vswitch.ActToModule, Module: mod})
	s.ToModule = func(uint32, *packet.Packet) {}

	var scrapes atomic.Uint64
	stop := make(chan struct{})
	var scraper sync.WaitGroup
	if enabled {
		reg := telemetry.New()
		s.RegisterMetrics(reg, "platform", "bench")
		scraper.Add(1)
		go func() {
			defer scraper.Done()
			tick := time.NewTicker(benchScrapeInterval)
			defer tick.Stop()
			for {
				select {
				case <-stop:
					return
				case <-tick.C:
					_ = reg.WritePrometheus(io.Discard)
					scrapes.Add(1)
				}
			}
		}()
	}

	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < g; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			pkts := make([]*packet.Packet, 16)
			for i := range pkts {
				pkts[i] = &packet.Packet{
					Protocol: packet.ProtoUDP,
					SrcIP:    packet.MustParseIP("8.8.8.8"),
					DstIP:    mod,
					SrcPort:  uint16(1024 + w*16 + i),
					DstPort:  1500, TTL: 64,
				}
			}
			for i := 0; i < perG; i++ {
				s.Process(pkts[i%len(pkts)])
			}
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start)
	close(stop)
	scraper.Wait()
	return elapsed, scrapes.Load()
}

// measureAdmissionTelemetry times deploy+kill cycles with or without
// the stage histograms and span tracer attached. The cache is
// disabled so every cycle pays the full pipeline the stages wrap.
func measureAdmissionTelemetry(enabled bool, cycles int) float64 {
	topo, err := topology.PaperFig3()
	if err != nil {
		panic(err)
	}
	c, err := controller.NewWithOptions(topo,
		"reach from internet tcp src port 80 -> HTTPOptimizer -> client",
		controller.Options{AdmissionCache: -1})
	if err != nil {
		panic(err)
	}
	if enabled {
		c.AttachTelemetry(telemetry.New(), telemetry.NewTracer(telemetry.DefaultTraceRing))
	}
	req := controller.Request{
		Tenant:       "bench",
		ModuleName:   "Batcher",
		Config:       fastPathModule,
		Requirements: fastPathReqs,
		Trust:        security.Client,
	}
	dep, err := c.Deploy(req) // untimed warm-up cycle
	if err != nil {
		panic(err)
	}
	if err := c.Kill(dep.ID); err != nil {
		panic(err)
	}
	start := time.Now()
	for i := 0; i < cycles; i++ {
		dep, err := c.Deploy(req)
		if err != nil {
			panic(err)
		}
		if err := c.Kill(dep.ID); err != nil {
			panic(err)
		}
	}
	return float64(cycles) / time.Since(start).Seconds()
}

// measurePipelinePathTrace pushes n pre-stamped packets through the
// compiled Exec in bursts of batch — measurePipelineCompiled's
// workload — optionally with flow-sampled path tracing armed at the
// default rate. The burst window slides through a doubled flow slice
// so every flow takes the head slot in turn: the armed side pays the
// real steady state (one AffinityHash per burst, and a full traced
// sweep whenever the head flow lands on the 1-in-every residue)
// rather than a fixed head that either always samples or never does.
// Returns the elapsed send time and the number of traces committed.
func measurePipelinePathTrace(n, batch int, enabled bool) (time.Duration, uint64) {
	prog, err := pipeline.CompileConfig(pipelineBenchConfig)
	if err != nil {
		panic(err)
	}
	x := pipeline.NewExec(prog)
	var now int64
	var tx uint64
	x.Now = func() int64 { return now }
	x.Transmit = func(iface int, p *packet.Packet) { tx++ }
	var seq atomic.Uint64
	if enabled {
		x.EnablePathTrace(telemetry.NewPathRing(telemetry.DefaultPathRing, &seq), 0)
	}
	// Far more flows than a burst: with the window sliding one flow per
	// round, an expected nflows/every ≈ 4 flows land on the sampling
	// residue, so the armed side really does traced runs instead of
	// only paying the per-burst hash.
	nflows := 8 * telemetry.DefaultTraceEvery / 2
	pkts := pipelineFlows(nflows)
	all := append(append(make([]*packet.Packet, 0, 2*nflows), pkts...), pkts...)
	rounds := n / batch
	for i := 0; i < 4096/batch+1; i++ {
		w := all[i%nflows : i%nflows+batch]
		resetTTLs(w)
		now += int64(1000 * batch)
		x.Run(0, w)
	}
	start := time.Now()
	for i := 0; i < rounds; i++ {
		w := all[i%nflows : i%nflows+batch]
		resetTTLs(w)
		now += int64(1000 * batch)
		x.Run(0, w)
	}
	return time.Since(start), seq.Load()
}

// TelemetryMeasure runs the paired overhead experiments. Both sides
// of each pair run back to back within a trial and the trial with the
// highest aggregate throughput supplies the figures (same methodology
// as FastPathMeasure: a noisy phase cannot land on one side of the
// ratio only).
func TelemetryMeasure(quick bool) *TelemetryResult {
	cycles, pkts, trials := 200, 2_000_000, 3
	if quick {
		cycles, pkts, trials = 60, 500_000, 2
	}
	r := &TelemetryResult{
		Format:             BenchFormat,
		DispatchGoroutines: 4,
		DispatchShards:     vswitch.DefaultShards,
		GOMAXPROCS:         runtime.GOMAXPROCS(0),
		NumCPU:             runtime.NumCPU(),
	}
	perG := pkts / r.DispatchGoroutines
	// Untimed warm-up so the first timed round doesn't absorb runtime
	// and allocator warm-up that later rounds skip.
	measureDispatchTelemetry(r.DispatchShards, r.DispatchGoroutines, perG/4, false)
	// The two sides run as many short interleaved rounds rather than
	// one long run each: scheduler and frequency drift then lands on
	// both sides of the ratio instead of whichever ran second.
	const rounds = 8
	perRound := perG / rounds
	type trial struct {
		off, on time.Duration
		scrapes uint64
	}
	var best trial
	for i := 0; i < trials; i++ {
		var cur trial
		for j := 0; j < rounds; j++ {
			off, _ := measureDispatchTelemetry(r.DispatchShards, r.DispatchGoroutines, perRound, false)
			on, scrapes := measureDispatchTelemetry(r.DispatchShards, r.DispatchGoroutines, perRound, true)
			cur.off += off
			cur.on += on
			cur.scrapes += scrapes
		}
		if best.off == 0 || cur.off+cur.on < best.off+best.on {
			best = cur
		}
	}
	sent := float64(r.DispatchGoroutines * perRound * rounds)
	r.DispatchDisabledPPS = sent / best.off.Seconds()
	r.DispatchEnabledPPS = sent / best.on.Seconds()
	r.DispatchOverheadPct = (r.DispatchDisabledPPS - r.DispatchEnabledPPS) / r.DispatchDisabledPPS * 100
	r.Scrapes = best.scrapes

	type admTrial struct{ off, on float64 }
	var bestAdm admTrial
	for i := 0; i < trials; i++ {
		off := measureAdmissionTelemetry(false, cycles)
		on := measureAdmissionTelemetry(true, cycles)
		if off+on > bestAdm.off+bestAdm.on {
			bestAdm = admTrial{off, on}
		}
	}
	r.AdmissionDisabledOpsPerSec, r.AdmissionEnabledOpsPerSec = bestAdm.off, bestAdm.on
	r.AdmissionOverheadPct = (bestAdm.off - bestAdm.on) / bestAdm.off * 100

	// Path-trace pair: same interleaved-round discipline as dispatch so
	// drift lands on both sides of the ratio.
	r.PathTraceEvery = telemetry.DefaultTraceEvery
	r.PathTraceBatch = 32
	ptPer := pkts / rounds
	type ptTrial struct {
		off, on time.Duration
		traces  uint64
	}
	var bestPT ptTrial
	measurePipelinePathTrace(r.PathTraceBatch, r.PathTraceBatch, false) // warm-up
	for i := 0; i < trials; i++ {
		var cur ptTrial
		for j := 0; j < rounds; j++ {
			off, _ := measurePipelinePathTrace(ptPer, r.PathTraceBatch, false)
			on, traces := measurePipelinePathTrace(ptPer, r.PathTraceBatch, true)
			cur.off += off
			cur.on += on
			cur.traces += traces
		}
		if bestPT.off == 0 || cur.off+cur.on < bestPT.off+bestPT.on {
			bestPT = cur
		}
	}
	ptSent := float64((ptPer / r.PathTraceBatch) * r.PathTraceBatch * rounds)
	r.PathTraceDisabledPPS = ptSent / bestPT.off.Seconds()
	r.PathTraceEnabledPPS = ptSent / bestPT.on.Seconds()
	r.PathTraceOverheadPct = (r.PathTraceDisabledPPS - r.PathTraceEnabledPPS) / r.PathTraceDisabledPPS * 100
	r.PathTraces = bestPT.traces
	return r
}

// JSON renders the result for archival next to BENCH_pr3.json.
func (r *TelemetryResult) JSON() ([]byte, error) {
	return json.MarshalIndent(r, "", "  ")
}

// Telemetry measures and renders the telemetry overhead benchmark.
func Telemetry(quick bool) *Table {
	return TelemetryTable(TelemetryMeasure(quick))
}

// TelemetryTable renders an already-measured result as a table.
func TelemetryTable(r *TelemetryResult) *Table {
	t := &Table{
		ID:      "TELEMETRY",
		Title:   "telemetry overhead (registry + continuous scrape vs dark)",
		Columns: []string{"experiment", "disabled", "enabled", "overhead"},
	}
	t.AddRow(fmt.Sprintf("dispatch %dg (Mpps)", r.DispatchGoroutines),
		f2(r.DispatchDisabledPPS/1e6), f2(r.DispatchEnabledPPS/1e6),
		fmt.Sprintf("%.1f%%", r.DispatchOverheadPct))
	t.AddRow("admission deploy+kill (ops/s)",
		f1(r.AdmissionDisabledOpsPerSec), f1(r.AdmissionEnabledOpsPerSec),
		fmt.Sprintf("%.1f%%", r.AdmissionOverheadPct))
	t.AddRow(fmt.Sprintf("pipeline pathtrace 1/%d (Mpps)", r.PathTraceEvery),
		f2(r.PathTraceDisabledPPS/1e6), f2(r.PathTraceEnabledPPS/1e6),
		fmt.Sprintf("%.1f%%", r.PathTraceOverheadPct))
	t.Notes = append(t.Notes,
		fmt.Sprintf("enabled side scraped the full exposition %d times (every %v) during dispatch", r.Scrapes, benchScrapeInterval),
		fmt.Sprintf("%d shards, %d senders, GOMAXPROCS=%d, NumCPU=%d", r.DispatchShards, r.DispatchGoroutines, r.GOMAXPROCS, r.NumCPU),
		"admission side: stage histograms + span tracer attached, cache disabled (full pipeline per cycle)",
		fmt.Sprintf("pathtrace side: compiled Exec, burst %d with rotating head, %d traces committed", r.PathTraceBatch, r.PathTraces))
	return t
}
