//go:build race

package bench

// raceEnabled reports that the race detector is instrumenting this
// build; wall-clock microbenchmark assertions are meaningless under
// its ~10x slowdown.
const raceEnabled = true
