package bench

import (
	"fmt"
	"time"

	"github.com/in-net/innet/internal/controller"
	"github.com/in-net/innet/internal/dataplane"
	_ "github.com/in-net/innet/internal/elements" // element registry
	"github.com/in-net/innet/internal/energy"
	"github.com/in-net/innet/internal/mawi"
	"github.com/in-net/innet/internal/netsim"
	"github.com/in-net/innet/internal/platform"
	"github.com/in-net/innet/internal/policy"
	"github.com/in-net/innet/internal/security"
	"github.com/in-net/innet/internal/topology"
	"github.com/in-net/innet/internal/traffic"
	"github.com/in-net/innet/internal/tunnel"
)

// Fig5 — ClickOS reaction time for the first 15 packets of 100
// concurrent flows (VMs booted on the fly).
func Fig5(quick bool) *Table {
	cfg := traffic.DefaultPingConfig()
	if quick {
		cfg.Flows = 50
	}
	rtts := traffic.PingThroughPlatform(cfg)
	t := &Table{
		ID:      "Figure 5",
		Title:   fmt.Sprintf("ping RTT (ms) of the first %d probes across %d on-the-fly flows", cfg.Probes, cfg.Flows),
		Columns: []string{"ping-id", "min", "avg", "max"},
	}
	for pr := 0; pr < cfg.Probes; pr++ {
		lo, hi, sum := 1e18, 0.0, 0.0
		for f := 0; f < cfg.Flows; f++ {
			v := rtts[f][pr]
			if v < lo {
				lo = v
			}
			if v > hi {
				hi = v
			}
			sum += v
		}
		t.AddRow(d(pr+1), f2(lo), f2(sum/float64(cfg.Flows)), f2(hi))
	}
	// The contrast the paper reports in the text: Linux guests.
	linuxCfg := cfg
	linuxCfg.Flows, linuxCfg.Probes = 10, 1
	linuxCfg.Kind = platform.LinuxVM
	linuxCfg.MemMB = 128 * 1024
	lr := traffic.PingThroughPlatform(linuxCfg)
	var lsum float64
	for _, f := range lr {
		lsum += f[0]
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("first packet avg %.0f ms (ClickOS) vs %.0f ms (stripped-down Linux VMs) — paper: ≈50 ms vs ≈700 ms",
			colAvg(rtts, 0), lsum/float64(len(lr))))
	return t
}

func colAvg(rtts [][]float64, col int) float64 {
	var s float64
	for _, f := range rtts {
		s += f[col]
	}
	return s / float64(len(rtts))
}

// Fig6 — 100 concurrent HTTP clients retrieving a 50 MB file at
// 25 Mb/s each through on-the-fly VMs.
func Fig6(quick bool) *Table {
	cfg := traffic.DefaultHTTPConfig()
	if quick {
		cfg.Clients = 50
	}
	res := traffic.HTTPThroughPlatform(cfg)
	t := &Table{
		ID:      "Figure 6",
		Title:   fmt.Sprintf("%d concurrent HTTP clients, 50 MB at 25 Mb/s each", cfg.Clients),
		Columns: []string{"flow-id", "connect-ms", "transfer-s"},
	}
	for _, r := range res {
		if r.Flow%10 != 0 && !quick {
			continue // sample every 10th row for readability
		}
		t.AddRow(d(r.Flow), f1(r.ConnectMS), f2(r.TransferS))
	}
	return t
}

// Fig7 — suspend/resume latency of one VM vs resident VM count.
func Fig7() *Table {
	m := platform.DefaultModel()
	t := &Table{
		ID:      "Figure 7",
		Title:   "suspend/resume latency vs number of existing VMs",
		Columns: []string{"vms", "suspend-ms", "resume-ms"},
	}
	for n := 0; n <= 200; n += 20 {
		t.AddRow(d(n),
			f1(float64(m.SuspendLatency(n))/1e6),
			f1(float64(m.ResumeLatency(n))/1e6))
	}
	return t
}

// Fig8 — cumulative throughput when one ClickOS VM carries many
// client configurations behind an IPClassifier demux.
func Fig8() *Table {
	m := platform.DefaultModel()
	t := &Table{
		ID:      "Figure 8",
		Title:   "cumulative throughput vs configurations consolidated in one VM (1500 B frames, one core)",
		Columns: []string{"configs", "Gbit/s"},
	}
	for _, n := range []int{24, 48, 72, 96, 120, 144, 168, 192, 216, 240, 252} {
		t.AddRow(d(n), gbps(m.ThroughputBps(1, n, 1500, 0)))
	}
	t.Notes = append(t.Notes, "line rate sustained to ≈150 configurations, then the demux-loaded core saturates (paper: same knee)")
	return t
}

// Fig9 — up to 1,000 clients at 8 Mb/s with 50/100/200 clients per VM.
func Fig9() *Table {
	m := platform.DefaultModel()
	t := &Table{
		ID:      "Figure 9",
		Title:   "throughput with up to 1,000 clients at 8 Mb/s each, one core",
		Columns: []string{"clients", "50-per-VM", "100-per-VM", "200-per-VM"},
	}
	for n := 100; n <= 1000; n += 100 {
		row := []string{d(n)}
		for _, per := range []int{50, 100, 200} {
			vms := (n + per - 1) / per
			offered := float64(n) * 8e6
			cap := m.ThroughputBps(vms, per, 1500, 0)
			got := offered
			if cap < got {
				got = cap
			}
			row = append(row, gbps(got))
		}
		t.AddRow(row...)
	}
	return t
}

// Fig10 — controller static-analysis time vs operator network size
// (real measurement of this build's compile/check split).
func Fig10(quick bool) *Table {
	sizes := []int{1, 3, 7, 15, 31, 63, 127, 255, 511, 1023}
	if quick {
		sizes = []int{1, 3, 7, 15, 31, 63}
	}
	t := &Table{
		ID:      "Figure 10",
		Title:   "static analysis time vs middleboxes in the operator network (measured on this machine)",
		Columns: []string{"middleboxes", "compile-ms", "check-ms"},
	}
	req := policy.MustParse(`
reach from internet udp
-> client
`)
	for _, n := range sizes {
		topo, err := topology.Grown(n)
		if err != nil {
			panic(err)
		}
		c0 := time.Now()
		net, nm, err := topo.Compile(nil)
		if err != nil {
			panic(err)
		}
		compile := time.Since(c0)
		env := &policy.CheckEnv{Net: net, Map: nm, ClientNet: topo.ClientNet}
		k0 := time.Now()
		res, err := req.Check(env)
		if err != nil {
			panic(err)
		}
		check := time.Since(k0)
		if !res.Satisfied {
			panic("fig10: requirement must hold: " + res.Reason)
		}
		t.AddRow(d(n),
			fmt.Sprintf("%.2f", float64(compile.Microseconds())/1000),
			fmt.Sprintf("%.2f", float64(check.Microseconds())/1000))
	}
	t.Notes = append(t.Notes, "both phases scale linearly with network size; the paper's Haskell pipeline paid most of its time in compilation (101 ms vs 5 ms on Fig. 3)")
	return t
}

// Table1 — SymNet-style safety verdicts for twelve middlebox types
// and three requester classes.
func Table1() *Table {
	t := &Table{
		ID:      "Table 1",
		Title:   "static safety verdicts per middlebox functionality and requester",
		Columns: []string{"functionality", "third-party", "client", "operator"},
	}
	sym := func(v security.Verdict) string {
		switch v {
		case security.Safe:
			return "OK"
		case security.NeedsSandbox:
			return "OK(s)"
		default:
			return "X"
		}
	}
	for _, row := range security.Table1() {
		cells := []string{row.Functionality}
		for _, trust := range []security.TrustClass{security.ThirdParty, security.Client, security.Operator} {
			rep, err := security.CheckTable1Row(row, trust)
			if err != nil {
				panic(err)
			}
			cells = append(cells, sym(rep.Verdict))
		}
		t.AddRow(cells...)
	}
	t.Notes = append(t.Notes, "OK = safe, OK(s) = deploy inside a ChangeEnforcer sandbox, X = rejected; matches the paper's Table 1")
	return t
}

// Fig11 — the cost of sandboxing: RX Mpps vs packet size with and
// without the ChangeEnforcer, plus the separate-VM sandbox.
func Fig11(quick bool) *Table {
	// A realistic tenant module: header validation, a small rule
	// list, per-flow accounting, payload integrity work, and a
	// mirror-style responder. The CPU weight matters: it puts the
	// 64 B rate below the 14.2 Mpps line-rate cap, as the paper's
	// Xen/netfront path did.
	const plain = `
in :: FromNetfront();
chk :: CheckIPHeader();
f :: IPFilter(deny tcp dst port 23, deny net 192.0.2.0/24, allow udp, allow tcp);
m :: FlowMeter();
cnt :: Counter();
crc :: SetCRC32();
mir :: IPMirror();
out :: ToNetfront();
in -> chk -> f -> m -> cnt -> crc -> mir -> out;
`
	const sandboxed = `
in :: FromNetfront();
chk :: CheckIPHeader();
f :: IPFilter(deny tcp dst port 23, deny net 192.0.2.0/24, allow udp, allow tcp);
m :: FlowMeter();
cnt :: Counter();
crc :: SetCRC32();
mir :: IPMirror();
ce :: ChangeEnforcer();
out :: ToNetfront();
in -> [0]ce;
ce[0] -> chk -> f -> m -> cnt -> crc -> mir -> [1]ce;
ce[1] -> out;
`
	n, trials := 200000, 5
	if quick {
		n, trials = 50000, 3
	}
	t := &Table{
		ID:      "Figure 11",
		Title:   "sandboxing cost: RX throughput (Mpps) vs packet size, measured on this machine, capped at 10 GbE",
		Columns: []string{"pkt-bytes", "no-sandbox", "ChangeEnforcer", "separate-VM"},
	}
	rp, err := dataplane.NewRunnerString(plain)
	if err != nil {
		panic(err)
	}
	rs, err := dataplane.NewRunnerString(sandboxed)
	if err != nil {
		panic(err)
	}
	for _, size := range []int{64, 128, 256, 512, 1024, 1472} {
		tpl := dataplane.UDPTemplate(size)
		a := rp.MeasureBest(tpl, n, trials)
		b := rs.MeasureBest(tpl, n, trials)
		noSb := dataplane.CapPPS(a.PPS, size, 10e9)
		withSb := dataplane.CapPPS(b.PPS, size, 10e9)
		// The separate-VM sandbox pays two VM context switches per
		// packet (§7.2: 64 B throughput drops to ≈30% of the
		// unsandboxed rate).
		sepVM := dataplane.CapPPS(a.PPS*0.30, size, 10e9)
		t.AddRow(d(size),
			f2(noSb/1e6), f2(withSb/1e6), f2(sepVM/1e6))
	}
	t.Notes = append(t.Notes,
		"in-configuration enforcement costs a fixed per-packet amount that disappears into the line-rate cap as packets grow (paper: -1/3 at 64 B, -1/5 at 128 B, none above)",
		"separate-VM sandboxing is modeled at 30% of the unsandboxed rate per §7.2 (context switching between the module VM and the sandbox VM)")
	return t
}

// Fig12 — aggregate throughput vs VM count for four middlebox types.
func Fig12() *Table {
	m := platform.DefaultModel()
	t := &Table{
		ID:      "Figure 12",
		Title:   "aggregate throughput of many single-config VMs on one core (1500 B frames)",
		Columns: []string{"vms", "nat", "iprouter", "firewall", "flowmeter"},
	}
	for _, n := range []int{1, 10, 20, 30, 40, 50, 60, 70, 80, 90, 100} {
		row := []string{d(n)}
		for _, class := range []string{"nat", "iprouter", "firewall", "flowmeter"} {
			row = append(row, gbps(m.ThroughputBps(n, 1, 1500, platform.ExtraCycles(class))))
		}
		t.AddRow(row...)
	}
	return t
}

// Fig13 — mobile energy vs push-notification batching interval.
func Fig13() *Table {
	m := energy.DefaultRadio()
	horizon := netsim.Seconds(3600)
	t := &Table{
		ID:      "Figure 13",
		Title:   "average handset power vs batching interval (1 KB notification generated every 30 s)",
		Columns: []string{"interval-s", "avg-mW"},
	}
	for _, interval := range []int{30, 60, 120, 240} {
		arr := energy.BatchedArrivals(netsim.Seconds(30), netsim.Seconds(float64(interval)), horizon)
		t.AddRow(d(interval), f1(m.AveragePowerMW(arr, horizon)))
	}
	t.Notes = append(t.Notes, "paper: ≈240 mW unbatched falling to ≈140 mW at 240 s batches")
	return t
}

// Fig14 — SCTP over TCP vs UDP tunnels across a lossy link.
func Fig14(quick bool) *Table {
	trials := 8
	if quick {
		trials = 3
	}
	rows := tunnel.Sweep(tunnel.DefaultParams(), []float64{0, 1, 2, 3, 4, 5}, trials)
	t := &Table{
		ID:      "Figure 14",
		Title:   "SCTP goodput over UDP vs TCP tunnels (100 Mb/s, 20 ms RTT)",
		Columns: []string{"loss-%", "udp-Mbps", "tcp-Mbps", "udp/tcp"},
	}
	for _, r := range rows {
		ratio := 0.0
		if r[2] > 0 {
			ratio = r[1] / r[2]
		}
		t.AddRow(f1(r[0]), f1(r[1]), f1(r[2]), f2(ratio))
	}
	t.Notes = append(t.Notes, "paper: at 1-5% loss the TCP tunnel delivers 2-5x less than the UDP tunnel")
	return t
}

// Fig15 — Slowloris defense with In-Net reverse proxies.
func Fig15(quick bool) *Table {
	single := traffic.SlowlorisScenario(traffic.DefaultSlowlorisConfig(false))
	defended := traffic.SlowlorisScenario(traffic.DefaultSlowlorisConfig(true))
	t := &Table{
		ID:      "Figure 15",
		Title:   "valid requests served per second before/during/after a Slowloris attack",
		Columns: []string{"time-s", "single-server", "with-In-Net"},
	}
	step := 30
	if quick {
		step = 60
	}
	for sec := 0; sec < len(single); sec += step {
		t.AddRow(d(sec), f1(single[sec]), f1(defended[sec]))
	}
	t.Notes = append(t.Notes, "attack runs 180-630 s; the defended origin redirects new connections to 3 In-Net reverse proxies at 240 s")
	return t
}

// Fig16 — CDF of 1 KB downloads from the origin vs the In-Net CDN.
func Fig16() *Table {
	res := traffic.CDNScenario(traffic.DefaultCDNConfig())
	t := &Table{
		ID:      "Figure 16",
		Title:   "download delay of a 1 KB file: origin server vs 3-cache In-Net CDN (75 clients)",
		Columns: []string{"percentile", "origin-ms", "cdn-ms"},
	}
	for _, p := range []float64{10, 25, 50, 75, 90, 99} {
		t.AddRow(f1(p),
			f1(traffic.Percentile(res.OriginMS, p)),
			f1(traffic.Percentile(res.CDNMS, p)))
	}
	med := traffic.Percentile(res.OriginMS, 50) / traffic.Percentile(res.CDNMS, 50)
	p90 := traffic.Percentile(res.OriginMS, 90) / traffic.Percentile(res.CDNMS, 90)
	t.Notes = append(t.Notes, fmt.Sprintf("median %.1fx lower, p90 %.1fx lower (paper: median halved, p90 4x lower)", med, p90))
	return t
}

// MAWI — active connection/client concurrency of a week of synthetic
// backbone traces.
func MAWI() *Table {
	t := &Table{
		ID:      "MAWI (§6)",
		Title:   "15-minute backbone trace concurrency, five weekdays",
		Columns: []string{"day", "connections", "max-active-conns", "max-active-clients"},
	}
	for day, st := range mawi.WeekOfTraces(1) {
		t.AddRow(d(day+1), d(st.Connections), d(st.MaxActiveConns), d(st.MaxActiveClients))
	}
	t.Notes = append(t.Notes, "paper: 1,600-4,000 active connections, 400-840 active clients — a single 1,000-user platform covers every active source")
	return t
}

// ControllerLatency — handling time of the paper's Fig. 4 request on
// the Fig. 3 topology (measured).
func ControllerLatency() *Table {
	topo, err := topology.PaperFig3()
	if err != nil {
		panic(err)
	}
	t := &Table{
		ID:      "§6.1",
		Title:   "controller request handling (Fig. 4 request on the Fig. 3 topology, measured)",
		Columns: []string{"phase", "ms"},
	}
	c, err := controller.New(topo, "reach from internet tcp src port 80 -> HTTPOptimizer -> client")
	if err != nil {
		panic(err)
	}
	dep, err := c.Deploy(controller.Request{
		Tenant:     "bench",
		ModuleName: "Batcher",
		Config: `
FromNetfront() ->
IPFilter(allow udp port 1500) ->
IPRewriter(pattern - - 10.1.15.133 - 0 0)
-> TimedUnqueue(120,100)
-> dst::ToNetfront()
`,
		Requirements: `
reach from internet udp
-> Batcher:dst:0 dst 10.1.15.133
-> client dst port 1500
const proto && dst port && payload
`,
		Trust: security.Client,
	})
	if err != nil {
		panic(err)
	}
	t.AddRow("compile", fmt.Sprintf("%.3f", float64(dep.Timings.Compile.Microseconds())/1000))
	t.AddRow("check", fmt.Sprintf("%.3f", float64(dep.Timings.Check.Microseconds())/1000))
	t.Notes = append(t.Notes, "paper: 101 ms compile + 5 ms analysis (Haskell toolchain); this build's compile phase is in-process, so both land in the same order")
	return t
}

// HTTPvsHTTPS — the §8 energy measurement.
func HTTPvsHTTPS() *Table {
	m := energy.DefaultDownload()
	t := &Table{
		ID:      "§8 HTTP vs HTTPS",
		Title:   "handset power during an 8 Mb/s WiFi download",
		Columns: []string{"protocol", "avg-mW"},
	}
	http := m.AveragePowerMW(8, false)
	https := m.AveragePowerMW(8, true)
	t.AddRow("HTTP", f1(http))
	t.AddRow("HTTPS", f1(https))
	t.Notes = append(t.Notes, fmt.Sprintf("TLS adds %.0f%% (paper: 570 vs 650 mW, +15%%)", (https/http-1)*100))
	return t
}
