package bench

import (
	"flag"
	"os"
	"path/filepath"
	"testing"
)

var updateGolden = flag.Bool("update-golden", false, "rewrite golden experiment tables")

// Golden regression tests for the fully deterministic experiments
// (model-driven or fixed-seed simulations — no wall-clock
// measurement). A diff here means a calibration constant or a
// simulator changed behaviour; if intentional, refresh with
//
//	go test ./internal/bench -run Golden -update-golden
func TestGoldenTables(t *testing.T) {
	cases := []struct {
		file string
		run  func() *Table
	}{
		{"fig7.golden", Fig7},
		{"fig8.golden", Fig8},
		{"fig9.golden", Fig9},
		{"fig12.golden", Fig12},
		{"fig13.golden", Fig13},
		{"table1.golden", Table1},
		{"fig14.golden", func() *Table { return Fig14(false) }},
		{"fig16.golden", Fig16},
		{"mawi.golden", MAWI},
		{"https.golden", HTTPvsHTTPS},
		{"ablation_a.golden", AblationConsolidation},
		{"ablation_b.golden", AblationSuspendResume},
	}
	for _, c := range cases {
		c := c
		t.Run(c.file, func(t *testing.T) {
			got := c.run().String()
			path := filepath.Join("testdata", c.file)
			if *updateGolden {
				if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("missing golden file (run with -update-golden): %v", err)
			}
			if got != string(want) {
				t.Errorf("table drifted from golden output.\n--- got ---\n%s\n--- want ---\n%s", got, want)
			}
		})
	}
}
