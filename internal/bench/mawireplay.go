package bench

import (
	"fmt"

	"github.com/in-net/innet/internal/mawi"
	"github.com/in-net/innet/internal/netsim"
	"github.com/in-net/innet/internal/packet"
	"github.com/in-net/innet/internal/platform"
)

// MAWIReplay closes the loop on the paper's §6 take-away: "a single
// In-Net platform running on commodity hardware could run
// personalized firewalls for all active sources on the MAWI
// backbone." It replays a synthetic MAWI trace against the platform
// simulator — every client gets a personalized stateless firewall
// module, booted on its first connection, reclaimed when idle — and
// reports the peak resident footprint on a 16 GB box.
func MAWIReplay(quick bool) *Table {
	cfg := mawi.DefaultConfig()
	if quick {
		cfg.Window = netsim.Seconds(3 * 60)
	}
	conns := mawi.Generate(cfg)

	sim := netsim.New(9)
	p := platform.New(sim, platform.DefaultModel(), 16*1024)
	p.Consolidate = true
	p.ConsolidatePerVM = 100

	base := packet.MustParseIP("100.64.0.0")
	registered := make(map[uint32]bool)
	peakVMs, peakMemMB := 0, 0

	for _, conn := range conns {
		addr := base + 1 + conn.Client
		if !registered[addr] {
			registered[addr] = true
			if err := p.Register(platform.ModuleSpec{Addr: addr, Config: ablationFirewall}); err != nil {
				panic(err)
			}
		}
		conn := conn
		sim.At(conn.Start, func() {
			pk := &packet.Packet{
				Protocol: packet.ProtoTCP,
				SrcIP:    1, DstIP: addr,
				TCPFlags: packet.TCPSyn, TTL: 64,
			}
			p.Deliver(pk, func(int, *packet.Packet) {})
			if p.ResidentVMs() > peakVMs {
				peakVMs = p.ResidentVMs()
			}
			if p.MemUsedMB > peakMemMB {
				peakMemMB = p.MemUsedMB
			}
		})
	}
	// Reclaim idle firewalls once a minute, like a real platform.
	for ts := netsim.Seconds(60); ts < cfg.Window; ts += netsim.Seconds(60) {
		sim.At(ts, func() { p.ReclaimIdle(netsim.Seconds(120)) })
	}
	sim.RunUntil(cfg.Window)

	st := mawi.Analyze(conns, cfg.Window)
	t := &Table{
		ID:      "MAWI replay (§6)",
		Title:   "personalized firewalls for every active MAWI source on one 16 GB platform",
		Columns: []string{"metric", "value"},
	}
	t.AddRow("trace connections", d(len(conns)))
	t.AddRow("distinct clients", d(len(registered)))
	t.AddRow("max active clients (trace)", d(st.MaxActiveClients))
	t.AddRow("peak resident VMs", d(peakVMs))
	t.AddRow("peak platform memory (MB)", d(peakMemMB))
	t.AddRow("VM boots", d(int(p.Boots)))
	t.AddRow("VMs reclaimed", d(int(p.Destroys)))
	t.AddRow("memory headroom", fmt.Sprintf("%.1f%% of 16 GB used", 100*float64(peakMemMB)/(16*1024)))
	t.Notes = append(t.Notes,
		"with consolidation and idle reclamation, the full backbone's active sources fit in a sliver of one inexpensive server — the paper's scaling claim")
	return t
}
