// Replication failover benchmark: how long clients lose write
// service when the leader dies. The clock starts at the kill and
// stops at the first successful admission on the promoted standby —
// so the figure covers silence detection (FailoverAfter), the term
// bump, and the first full admission pipeline run on the survivor.
// The JSON form is what CI archives as BENCH_replication.json.
package bench

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"sort"
	"time"

	"github.com/in-net/innet/internal/controller"
	"github.com/in-net/innet/internal/faults"
	"github.com/in-net/innet/internal/security"
)

// ReplicationResult is the machine-readable form of the failover
// benchmark (serialized to BENCH_replication.json by innet-bench
// -replication-json).
type ReplicationResult struct {
	Format string `json:"format"`

	// Pair configuration the trials ran under.
	FailoverAfterMs  float64 `json:"failover_after_ms"`
	HeartbeatEveryMs float64 `json:"heartbeat_every_ms"`
	AckTimeoutMs     float64 `json:"ack_timeout_ms"`
	WarmDeploys      int     `json:"warm_deploys"`

	// Failover time per trial: leader kill -> first successful
	// admission on the promoted standby.
	Trials           int       `json:"trials"`
	FailoverMs       []float64 `json:"failover_ms"`
	FailoverMsMin    float64   `json:"failover_ms_min"`
	FailoverMsMedian float64   `json:"failover_ms_median"`
	FailoverMsMax    float64   `json:"failover_ms_max"`
	// DetectionFloorMs is the configured silence threshold — the part
	// of every failover no implementation speedup can remove.
	DetectionFloorMs float64 `json:"detection_floor_ms"`

	// Quorum failover: the same kill, but on a 3-replica group where
	// the survivors must ELECT a successor (majority vote) before one
	// of them can admit. The delta over the pair figure is the cost of
	// the vote round.
	ElectionTimeoutMs      float64   `json:"election_timeout_ms,omitempty"`
	QuorumFailoverMs       []float64 `json:"quorum_failover_ms,omitempty"`
	QuorumFailoverMsMin    float64   `json:"quorum_failover_ms_min,omitempty"`
	QuorumFailoverMsMedian float64   `json:"quorum_failover_ms_median,omitempty"`
	QuorumFailoverMsMax    float64   `json:"quorum_failover_ms_max,omitempty"`

	GOMAXPROCS int `json:"gomaxprocs"`
	NumCPU     int `json:"num_cpu"`
}

const replBenchModule = `
in :: FromNetfront();
f :: IPFilter(allow udp);
mir :: IPMirror();
out :: ToNetfront();
in -> f -> mir -> out;
`

func replBenchRequest(i int) controller.Request {
	return controller.Request{
		Tenant:     fmt.Sprintf("bench%d", i),
		ModuleName: fmt.Sprintf("failover%d", i),
		Config:     replBenchModule,
		Trust:      security.ThirdParty,
	}
}

// measureFailoverOnce boots a fresh replicated pair, warms it with
// real deployments, kills the leader and polls the standby with the
// next deployment until it is admitted. Returns kill-to-admission.
func measureFailoverOnce(opts faults.ReplPairOptions, warm int) (time.Duration, error) {
	ldir, err := os.MkdirTemp("", "innet-bench-leader-")
	if err != nil {
		return 0, err
	}
	defer os.RemoveAll(ldir)
	sdir, err := os.MkdirTemp("", "innet-bench-standby-")
	if err != nil {
		return 0, err
	}
	defer os.RemoveAll(sdir)
	opts.LeaderDir, opts.StandbyDir = ldir, sdir

	p, err := faults.NewReplPair(opts)
	if err != nil {
		return 0, err
	}
	defer p.Close()

	// Warm deployments replicate synchronously, so by the kill the
	// standby is a fully-admitted warm replica — the deployment the
	// paper's failover story depends on.
	for i := 0; i < warm; i++ {
		if _, err := p.A.Ctl.Deploy(replBenchRequest(i)); err != nil {
			return 0, fmt.Errorf("warm deploy %d: %w", i, err)
		}
	}

	kill := time.Now()
	p.CrashLeader()
	req := replBenchRequest(warm)
	deadline := kill.Add(30 * time.Second)
	for time.Now().Before(deadline) {
		if _, err := p.B.Ctl.Deploy(req); err == nil {
			return time.Since(kill), nil
		}
		time.Sleep(time.Millisecond)
	}
	return 0, fmt.Errorf("standby never admitted a deploy within 30s of the kill")
}

// measureQuorumFailoverOnce boots a fresh 3-replica group, warms it,
// kills the leader and polls both survivors with the next deployment
// until the elected successor admits it. Returns kill-to-admission —
// detection, the vote round, and the first admission, end to end.
func measureQuorumFailoverOnce(opts faults.ReplGroupOptions, warm int) (time.Duration, error) {
	for i := 0; i < 3; i++ {
		dir, err := os.MkdirTemp("", fmt.Sprintf("innet-bench-quorum%d-", i))
		if err != nil {
			return 0, err
		}
		defer os.RemoveAll(dir)
		opts.Dirs = append(opts.Dirs, dir)
	}
	g, err := faults.NewReplGroup(opts)
	if err != nil {
		return 0, err
	}
	defer g.Close()

	for i := 0; i < warm; i++ {
		if _, err := g.Nodes[0].Ctl.Deploy(replBenchRequest(i)); err != nil {
			return 0, fmt.Errorf("warm deploy %d: %w", i, err)
		}
	}

	kill := time.Now()
	g.Crash(0)
	req := replBenchRequest(warm)
	deadline := kill.Add(30 * time.Second)
	for time.Now().Before(deadline) {
		for _, i := range []int{1, 2} {
			if _, err := g.Nodes[i].Ctl.Deploy(req); err == nil {
				return time.Since(kill), nil
			}
		}
		time.Sleep(time.Millisecond)
	}
	return 0, fmt.Errorf("no survivor admitted a deploy within 30s of the kill")
}

// ReplicationMeasure runs the failover trials. Each trial gets a
// fresh pair (a leader kill is not repeatable within one).
func ReplicationMeasure(quick bool) *ReplicationResult {
	trials, warm := 5, 3
	if quick {
		trials, warm = 3, 2
	}
	opts := faults.ReplPairOptions{
		AckTimeout:     500 * time.Millisecond,
		FailoverAfter:  150 * time.Millisecond,
		HeartbeatEvery: 20 * time.Millisecond,
		RedialEvery:    10 * time.Millisecond,
	}
	r := &ReplicationResult{
		Format:           BenchFormat,
		FailoverAfterMs:  float64(opts.FailoverAfter) / float64(time.Millisecond),
		HeartbeatEveryMs: float64(opts.HeartbeatEvery) / float64(time.Millisecond),
		AckTimeoutMs:     float64(opts.AckTimeout) / float64(time.Millisecond),
		WarmDeploys:      warm,
		Trials:           trials,
		DetectionFloorMs: float64(opts.FailoverAfter) / float64(time.Millisecond),
		GOMAXPROCS:       runtime.GOMAXPROCS(0),
		NumCPU:           runtime.NumCPU(),
	}
	for i := 0; i < trials; i++ {
		d, err := measureFailoverOnce(opts, warm)
		if err != nil {
			panic(fmt.Sprintf("replication bench trial %d: %v", i, err))
		}
		r.FailoverMs = append(r.FailoverMs, float64(d)/float64(time.Millisecond))
	}
	sorted := append([]float64(nil), r.FailoverMs...)
	sort.Float64s(sorted)
	r.FailoverMsMin = sorted[0]
	r.FailoverMsMedian = sorted[len(sorted)/2]
	r.FailoverMsMax = sorted[len(sorted)-1]

	gopts := faults.ReplGroupOptions{
		AckTimeout:      opts.AckTimeout,
		FailoverAfter:   opts.FailoverAfter,
		ElectionTimeout: 200 * time.Millisecond,
		HeartbeatEvery:  opts.HeartbeatEvery,
		RedialEvery:     opts.RedialEvery,
	}
	r.ElectionTimeoutMs = float64(gopts.ElectionTimeout) / float64(time.Millisecond)
	for i := 0; i < trials; i++ {
		d, err := measureQuorumFailoverOnce(gopts, warm)
		if err != nil {
			panic(fmt.Sprintf("quorum failover bench trial %d: %v", i, err))
		}
		r.QuorumFailoverMs = append(r.QuorumFailoverMs, float64(d)/float64(time.Millisecond))
	}
	sorted = append([]float64(nil), r.QuorumFailoverMs...)
	sort.Float64s(sorted)
	r.QuorumFailoverMsMin = sorted[0]
	r.QuorumFailoverMsMedian = sorted[len(sorted)/2]
	r.QuorumFailoverMsMax = sorted[len(sorted)-1]
	return r
}

// JSON renders the result for archival next to BENCH_pr3.json.
func (r *ReplicationResult) JSON() ([]byte, error) {
	return json.MarshalIndent(r, "", "  ")
}

// ReplicationTable renders an already-measured result as a table.
func ReplicationTable(r *ReplicationResult) *Table {
	t := &Table{
		ID:      "REPLICATION",
		Title:   "replication failover (leader kill -> first standby admission)",
		Columns: []string{"metric", "ms"},
	}
	t.AddRow("failover min", f1(r.FailoverMsMin))
	t.AddRow("failover median", f1(r.FailoverMsMedian))
	t.AddRow("failover max", f1(r.FailoverMsMax))
	t.AddRow("detection floor (FailoverAfter)", f1(r.DetectionFloorMs))
	if len(r.QuorumFailoverMs) > 0 {
		t.AddRow("3-node elected failover min", f1(r.QuorumFailoverMsMin))
		t.AddRow("3-node elected failover median", f1(r.QuorumFailoverMsMedian))
		t.AddRow("3-node elected failover max", f1(r.QuorumFailoverMsMax))
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("%d trials, fresh pair each; %d warm deployments replicated before the kill", r.Trials, r.WarmDeploys),
		fmt.Sprintf("heartbeat %.0fms, ack timeout %.0fms, GOMAXPROCS=%d", r.HeartbeatEveryMs, r.AckTimeoutMs, r.GOMAXPROCS),
		"median - floor is the promotion + first-admission cost on this machine",
		"3-node rows add a majority vote round (election) to the same kill")
	return t
}
