// Pipeline bench: the compiled run-to-completion dataplane against
// the interface-dispatch graph walk, on the same element chain. Both
// sides measure PURE dispatch — packets are pre-stamped, no producer
// goroutine, no pool traffic — so the ratio isolates what the
// flattening buys: monomorphic kernels and batch sweeps instead of a
// per-packet interface call per element. The worker sweep drives the
// affinity-partitioned Engine at 1/2/4/8 workers (on a single-core
// box the curve is flat; the report records GOMAXPROCS so readers can
// tell). Serialized to BENCH_pipeline.json by innet-bench
// -pipeline-json (docs/FORMATS.md §13).
package bench

import (
	"encoding/json"
	"fmt"
	"runtime"
	"time"

	"github.com/in-net/innet/internal/click"
	"github.com/in-net/innet/internal/packet"
	"github.com/in-net/innet/internal/pipeline"
)

// pipelineBenchConfig is the measured chain: header validation,
// marking, TTL, accounting — the common middlebox prefix, all
// flattenable. The per-element work is deliberately cheap (no
// flowspec evaluation) so the measurement isolates DISPATCH cost —
// what the compilation removes — rather than element internals, which
// both modes pay identically.
const pipelineBenchConfig = `
in :: FromNetfront();
chk :: CheckIPHeader;
pnt :: Paint(7);
ttl :: DecIPTTL;
cnt :: Counter;
out :: ToNetfront();
d :: Discard;
in -> chk -> pnt -> ttl -> cnt -> out;
chk[1] -> d;
ttl[1] -> d;
`

// PipelineBatchRow is one burst size's graph-vs-compiled pair.
type PipelineBatchRow struct {
	BatchSize   int     `json:"batch_size"`
	GraphPPS    float64 `json:"graph_pps"`
	CompiledPPS float64 `json:"compiled_pps"`
	Speedup     float64 `json:"speedup"`
}

// PipelineWorkerRow is one engine width's throughput.
type PipelineWorkerRow struct {
	Workers int     `json:"workers"`
	PPS     float64 `json:"pps"`
	Speedup float64 `json:"speedup_vs_1"`
}

// PipelineResult is the machine-readable form of the pipeline bench
// (BENCH_pipeline.json).
type PipelineResult struct {
	Format string `json:"format"`
	// Stages is the compiled chain length ("name :: class" per stage).
	Stages []string `json:"stages"`
	// FusedStages counts stages folded into fused linear runs.
	FusedStages int `json:"fused_stages"`

	// Batches sweeps burst sizes on one core: per-packet graph walk vs
	// compiled run-to-completion.
	Batches []PipelineBatchRow `json:"batches"`
	// SingleCoreSpeedup is the compiled/graph ratio at the default
	// burst size — the headline number the CI gate tracks.
	BatchSize         int     `json:"batch_size"`
	GraphPPS          float64 `json:"graph_pps"`
	CompiledPPS       float64 `json:"compiled_pps"`
	SingleCoreSpeedup float64 `json:"single_core_speedup"`

	// Workers sweeps the affinity-partitioned engine.
	Workers []PipelineWorkerRow `json:"workers"`

	GOMAXPROCS int `json:"gomaxprocs"`
	NumCPU     int `json:"num_cpu"`
}

// pipelineFlows builds nflows pre-stamped measurement packets.
func pipelineFlows(nflows int) []*packet.Packet {
	pkts := make([]*packet.Packet, nflows)
	for i := range pkts {
		pkts[i] = &packet.Packet{
			Protocol: packet.ProtoUDP,
			SrcIP:    packet.MustParseIP("8.8.8.8") + uint32(i),
			DstIP:    packet.MustParseIP("198.51.100.10"),
			SrcPort:  uint16(1024 + i),
			DstPort:  1500, TTL: 255,
			Payload: make([]byte, 36),
		}
	}
	return pkts
}

// resetTTLs restores the field the chain mutates, so every
// measurement round sees identical packets. Both modes pay this
// identically.
func resetTTLs(pkts []*packet.Packet) {
	for _, p := range pkts {
		p.TTL = 255
	}
}

// measurePipelineGraph pushes n packets through the router with the
// per-packet Inject walk, in bursts of batch (the burst only shapes
// the reset cadence — the walk itself is per packet).
func measurePipelineGraph(n, batch int) float64 {
	r := click.MustBuildString(pipelineBenchConfig)
	var now int64
	var tx uint64
	ctx := &click.Context{
		Now:      func() int64 { return now },
		Transmit: func(iface int, p *packet.Packet) { tx++ },
	}
	pkts := pipelineFlows(batch)
	rounds := n / batch
	// Warm up.
	for i := 0; i < 4096/batch+1; i++ {
		resetTTLs(pkts)
		for _, pk := range pkts {
			now += 1000
			r.Inject(ctx, 0, pk)
		}
	}
	start := time.Now()
	for i := 0; i < rounds; i++ {
		resetTTLs(pkts)
		for _, pk := range pkts {
			now += 1000
			r.Inject(ctx, 0, pk)
		}
	}
	return float64(rounds*batch) / time.Since(start).Seconds()
}

// measurePipelineCompiled is the same workload through the compiled
// Exec, batch-in/batch-out.
func measurePipelineCompiled(n, batch int) float64 {
	prog, err := pipeline.CompileConfig(pipelineBenchConfig)
	if err != nil {
		panic(err)
	}
	x := pipeline.NewExec(prog)
	var now int64
	var tx uint64
	x.Now = func() int64 { return now }
	x.Transmit = func(iface int, p *packet.Packet) { tx++ }
	pkts := pipelineFlows(batch)
	rounds := n / batch
	for i := 0; i < 4096/batch+1; i++ {
		resetTTLs(pkts)
		now += int64(1000 * batch)
		x.Run(0, pkts)
	}
	start := time.Now()
	for i := 0; i < rounds; i++ {
		resetTTLs(pkts)
		now += int64(1000 * batch)
		x.Run(0, pkts)
	}
	return float64(rounds*batch) / time.Since(start).Seconds()
}

// measurePipelineEngine drives an affinity-partitioned engine of the
// given width: the producer stamps and submits rounds of pre-built
// batches and drains once per round, so the barrier cost is amortized
// across the round's batches.
func measurePipelineEngine(workers, n, batch int) float64 {
	eng, err := pipeline.NewEngineString(pipelineBenchConfig, pipeline.Config{
		Workers:  workers,
		Transmit: func(worker, iface int, p *packet.Packet) {},
	})
	if err != nil {
		panic(err)
	}
	defer eng.Close()
	const roundBatches = 64
	round := make([][]*packet.Packet, roundBatches)
	for i := range round {
		pkts := pipelineFlows(batch)
		// Distinct flows per batch so the partitioner spreads work.
		for j, pk := range pkts {
			pk.SrcPort = uint16(1024 + i*batch + j)
		}
		round[i] = pkts
	}
	perRound := roundBatches * batch
	rounds := n / perRound
	if rounds < 1 {
		rounds = 1
	}
	run := func(k int) {
		for i := 0; i < k; i++ {
			for _, pkts := range round {
				resetTTLs(pkts)
				eng.Dispatch(0, pkts)
			}
			eng.Drain()
		}
	}
	run(2) // warm up
	start := time.Now()
	run(rounds)
	return float64(rounds*perRound) / time.Since(start).Seconds()
}

// PipelineMeasure runs the batch sweep and the worker sweep. quick
// shrinks the packet counts; cfg supplies the burst ladder and the
// headline burst size.
func PipelineMeasure(quick bool, cfg BatchConfig) *PipelineResult {
	n := 4_000_000
	trials := 3
	if quick {
		n, trials = 1_000_000, 2
	}
	prog, err := pipeline.CompileConfig(pipelineBenchConfig)
	if err != nil {
		panic(err)
	}
	r := &PipelineResult{
		Format:      BenchFormat,
		Stages:      prog.Stages(),
		FusedStages: prog.NumFused(),
		BatchSize:   cfg.BatchSize(),
		GOMAXPROCS:  runtime.GOMAXPROCS(0),
		NumCPU:      runtime.NumCPU(),
	}

	best := func(f func() float64) float64 {
		var b float64
		for i := 0; i < trials; i++ {
			if v := f(); v > b {
				b = v
			}
		}
		return b
	}

	for _, b := range cfg.BatchSweep() {
		row := PipelineBatchRow{
			BatchSize:   b,
			GraphPPS:    best(func() float64 { return measurePipelineGraph(n, b) }),
			CompiledPPS: best(func() float64 { return measurePipelineCompiled(n, b) }),
		}
		row.Speedup = row.CompiledPPS / row.GraphPPS
		r.Batches = append(r.Batches, row)
	}
	r.GraphPPS = best(func() float64 { return measurePipelineGraph(n, r.BatchSize) })
	r.CompiledPPS = best(func() float64 { return measurePipelineCompiled(n, r.BatchSize) })
	r.SingleCoreSpeedup = r.CompiledPPS / r.GraphPPS

	var one float64
	for _, w := range []int{1, 2, 4, 8} {
		pps := best(func() float64 { return measurePipelineEngine(w, n, r.BatchSize) })
		if w == 1 {
			one = pps
		}
		r.Workers = append(r.Workers, PipelineWorkerRow{
			Workers: w, PPS: pps, Speedup: pps / one,
		})
	}
	return r
}

// Pipeline measures and renders the pipeline bench.
func Pipeline(quick bool, cfg BatchConfig) *Table {
	return PipelineTable(PipelineMeasure(quick, cfg))
}

// PipelineTable renders an already-measured result.
func PipelineTable(r *PipelineResult) *Table {
	t := &Table{
		ID:      "PIPELINE",
		Title:   "compiled run-to-completion pipeline vs graph walk (single core + worker sweep)",
		Columns: []string{"experiment", "graph (Mpps)", "compiled (Mpps)", "speedup"},
	}
	for _, row := range r.Batches {
		t.AddRow(fmt.Sprintf("dispatch batch=%d", row.BatchSize),
			f2(row.GraphPPS/1e6), f2(row.CompiledPPS/1e6), f2(row.Speedup)+"x")
	}
	for _, row := range r.Workers {
		t.AddRow(fmt.Sprintf("engine workers=%d batch=%d", row.Workers, r.BatchSize),
			"-", f2(row.PPS/1e6), f2(row.Speedup)+"x vs 1w")
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("chain: %d compiled stages (%d fused); headline batch=%d speedup %.2fx", len(r.Stages), r.FusedStages, r.BatchSize, r.SingleCoreSpeedup),
		fmt.Sprintf("GOMAXPROCS=%d NumCPU=%d (worker scaling is flat on a single-core box)", r.GOMAXPROCS, r.NumCPU))
	return t
}

// JSON renders the result as the BENCH_pipeline.json payload.
func (r *PipelineResult) JSON() ([]byte, error) {
	return json.MarshalIndent(r, "", "  ")
}
