package bench

import (
	"fmt"

	"github.com/in-net/innet/internal/dataplane"
	"github.com/in-net/innet/internal/netsim"
	"github.com/in-net/innet/internal/packet"
	"github.com/in-net/innet/internal/platform"
)

const ablationFirewall = `
in :: FromNetfront();
fw :: IPFilter(allow all);
out :: ToNetfront();
in -> fw -> out;
`

// AblationConsolidation quantifies §5's "aggregating multiple users
// onto a single virtual machine": the same 1,000 stateless clients
// served one-VM-per-client versus consolidated 100-per-VM. The win is
// two orders of magnitude in memory and booted guests, which is what
// lets a $1,000 box carry the MAWI backbone's active sources.
func AblationConsolidation() *Table {
	t := &Table{
		ID:      "Ablation A",
		Title:   "one VM per client vs consolidation (1,000 stateless firewall clients)",
		Columns: []string{"strategy", "vms", "boots", "memory-MB"},
	}
	run := func(consolidate bool, perVM int) (vms int, boots uint64, mem int) {
		sim := netsim.New(1)
		p := platform.New(sim, platform.DefaultModel(), 64*1024)
		p.Consolidate = consolidate
		p.ConsolidatePerVM = perVM
		base := packet.MustParseIP("198.51.0.0")
		for i := 0; i < 1000; i++ {
			addr := base + 1 + uint32(i)
			if err := p.Register(platform.ModuleSpec{Addr: addr, Config: ablationFirewall}); err != nil {
				panic(err)
			}
			pk := &packet.Packet{Protocol: packet.ProtoUDP, SrcIP: 1, DstIP: addr, TTL: 64}
			p.Deliver(pk, func(int, *packet.Packet) {})
			sim.Run()
		}
		return p.ResidentVMs(), p.Boots, p.MemUsedMB
	}
	vms, boots, mem := run(false, 0)
	t.AddRow("per-client VMs", d(vms), d(int(boots)), d(mem))
	vms, boots, mem = run(true, 100)
	t.AddRow("consolidated (100/VM)", d(vms), d(int(boots)), d(mem))
	t.Notes = append(t.Notes, "consolidation is only applied after the controller statically proves the configurations cannot interact (§5)")
	return t
}

// AblationSuspendResume quantifies §5's suspend/resume design for
// stateful modules against the destroy/reboot alternative: both
// reactivation latency and whether middlebox state (here a FlowMeter)
// survives.
func AblationSuspendResume() *Table {
	t := &Table{
		ID:      "Ablation B",
		Title:   "reactivating an idle stateful module: suspend/resume vs destroy/boot (100 resident VMs)",
		Columns: []string{"strategy", "reactivate-ms", "flow-state"},
	}
	m := platform.DefaultModel()
	const resident = 100
	resume := float64(m.ResumeLatency(resident)) / 1e6
	boot := float64(m.BootLatency(platform.ClickOS, resident)) / 1e6
	t.AddRow("suspend/resume", f1(resume), "preserved")
	t.AddRow("destroy/boot", f1(boot), "LOST (connections reset)")
	t.Notes = append(t.Notes,
		"terminating a stateful VM would terminate end-to-end traffic (§5); resume costs more milliseconds than boot only at very high VM counts, but keeps the flow tables")
	return t
}

// AblationSandbox isolates the §7.2 comparison on this machine: the
// same module measured bare, with the in-configuration ChangeEnforcer
// and with the separate-VM sandbox model.
func AblationSandbox(quick bool) *Table {
	n, trials := 200000, 5
	if quick {
		n, trials = 50000, 3
	}
	const bare = `
in :: FromNetfront();
f :: IPFilter(allow udp);
m :: FlowMeter();
crc :: SetCRC32();
mir :: IPMirror();
out :: ToNetfront();
in -> f -> m -> crc -> mir -> out;
`
	const enforced = `
in :: FromNetfront();
f :: IPFilter(allow udp);
m :: FlowMeter();
crc :: SetCRC32();
mir :: IPMirror();
ce :: ChangeEnforcer();
out :: ToNetfront();
in -> [0]ce;
ce[0] -> f;
f -> m -> crc -> mir -> [1]ce;
ce[1] -> out;
`
	t := &Table{
		ID:      "Ablation C",
		Title:   "sandboxing strategies at 64 B packets (measured ns/packet)",
		Columns: []string{"strategy", "ns/pkt", "relative"},
	}
	rb, err := dataplane.NewRunnerString(bare)
	if err != nil {
		panic(err)
	}
	re, err := dataplane.NewRunnerString(enforced)
	if err != nil {
		panic(err)
	}
	tpl := dataplane.UDPTemplate(64)
	a := rb.MeasureBest(tpl, n, trials)
	b := re.MeasureBest(tpl, n, trials)
	// Separate-VM: two VM context switches per packet; §7.2 reports
	// the system dropping to ≈30% of the unsandboxed rate.
	sepNs := a.NsPerPacket / 0.30
	t.AddRow("no sandbox", f1(a.NsPerPacket), "1.00x")
	t.AddRow("ChangeEnforcer in-config", f1(b.NsPerPacket), fmt.Sprintf("%.2fx", b.NsPerPacket/a.NsPerPacket))
	t.AddRow("separate-VM sandbox", f1(sepNs), fmt.Sprintf("%.2fx", sepNs/a.NsPerPacket))
	t.Notes = append(t.Notes,
		"static checking makes the sandbox unnecessary for most configurations (§7.2: 'luckily, sandboxing is not needed in the first place')")
	return t
}
