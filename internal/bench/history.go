// Per-commit bench history (BENCH_HISTORY.jsonl) and the CI
// regression gate. Every `make bench-all` run appends one JSON line —
// commit, environment, and the headline metrics of each suite — so
// the file is a grep-able flat record of how the numbers moved, and
// the gate can compare a fresh run against the previous entry from
// the same environment without any external tooling.
package bench

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"strings"
	"time"
)

// HistoryFormat versions the BENCH_HISTORY.jsonl line schema
// (docs/FORMATS.md §14).
const HistoryFormat = "innet-bench-history/1"

// HistoryEntry is one appended line: which commit, where it ran, and
// the flat metric map the gate compares.
type HistoryEntry struct {
	Format     string             `json:"format"`
	Commit     string             `json:"commit"`
	TimeUTC    string             `json:"time_utc"`
	Env        string             `json:"env"`
	GOMAXPROCS int                `json:"gomaxprocs"`
	NumCPU     int                `json:"num_cpu"`
	Metrics    map[string]float64 `json:"metrics"`
}

// NewHistoryEntry stamps an entry for this process; callers fill
// Metrics via Record*.
func NewHistoryEntry(commit, env string) *HistoryEntry {
	return &HistoryEntry{
		Format:     HistoryFormat,
		Commit:     commit,
		TimeUTC:    time.Now().UTC().Format(time.RFC3339),
		Env:        env,
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
		Metrics:    map[string]float64{},
	}
}

// RecordFastPath folds the fast-path suite's gated headline numbers in.
func (e *HistoryEntry) RecordFastPath(r *FastPathResult) {
	e.Metrics["dispatch_batch_pps"] = r.DispatchBatchPPS
	e.Metrics["dispatch_sharded_pps"] = r.DispatchShardedPPS
	e.Metrics["dataplane_batched_pps"] = r.DataplaneBatchedPPS
	e.Metrics["admission_cold_ops_per_sec"] = r.AdmissionColdOpsPerSec
	e.Metrics["admission_warm_ops_per_sec"] = r.AdmissionWarmOpsPerSec
}

// RecordPipeline folds the pipeline suite's headline numbers in.
func (e *HistoryEntry) RecordPipeline(r *PipelineResult) {
	e.Metrics["pipeline_graph_pps"] = r.GraphPPS
	e.Metrics["pipeline_compiled_pps"] = r.CompiledPPS
	e.Metrics["pipeline_speedup"] = r.SingleCoreSpeedup
}

// AppendHistory writes the entry as one JSON line, creating the file
// on first use. Append-only by construction: nothing ever rewrites
// earlier lines.
func AppendHistory(path string, e *HistoryEntry) error {
	data, err := json.Marshal(e)
	if err != nil {
		return err
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return err
	}
	defer f.Close()
	if _, err := f.Write(append(data, '\n')); err != nil {
		return err
	}
	return f.Sync()
}

// ReadHistory parses every line of a history file, skipping blanks.
func ReadHistory(path string) ([]HistoryEntry, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var out []HistoryEntry
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	ln := 0
	for sc.Scan() {
		ln++
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		var e HistoryEntry
		if err := json.Unmarshal([]byte(line), &e); err != nil {
			return nil, fmt.Errorf("%s:%d: %w", path, ln, err)
		}
		out = append(out, e)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

// GatedMetrics are the throughput metrics the CI gate enforces:
// a drop beyond the threshold in any of them fails the build. Only
// metrics present in BOTH compared entries are checked, so adding a
// new suite never trips the gate on its first appearance.
var GatedMetrics = []string{
	"dispatch_batch_pps",
	"admission_cold_ops_per_sec",
	"pipeline_compiled_pps",
}

// GateError lists the regressions that tripped the gate.
type GateError struct {
	BaseCommit string
	Regressed  []string
}

// Error implements error.
func (e *GateError) Error() string {
	return fmt.Sprintf("bench gate: regression vs %s: %s",
		e.BaseCommit, strings.Join(e.Regressed, "; "))
}

// Gate compares the newest entry against the previous entry with the
// same Env (measurements from different machines are not comparable)
// and returns a GateError when any gated metric dropped by more than
// threshold (e.g. 0.15 = 15%). With fewer than two comparable entries
// there is nothing to gate and it returns nil.
func Gate(entries []HistoryEntry, threshold float64) error {
	if len(entries) < 2 {
		return nil
	}
	cur := entries[len(entries)-1]
	var base *HistoryEntry
	for i := len(entries) - 2; i >= 0; i-- {
		if entries[i].Env == cur.Env {
			base = &entries[i]
			break
		}
	}
	if base == nil {
		return nil
	}
	var bad []string
	for _, k := range GatedMetrics {
		b, okB := base.Metrics[k]
		c, okC := cur.Metrics[k]
		if !okB || !okC || b <= 0 {
			continue
		}
		if drop := (b - c) / b; drop > threshold {
			bad = append(bad, fmt.Sprintf("%s %.3g -> %.3g (-%.1f%% > %.0f%%)",
				k, b, c, drop*100, threshold*100))
		}
	}
	if len(bad) > 0 {
		return &GateError{BaseCommit: base.Commit, Regressed: bad}
	}
	return nil
}

// GateFile is the one-call form used by innet-bench -gate and
// scripts/bench_gate.sh.
func GateFile(path string, threshold float64) error {
	entries, err := ReadHistory(path)
	if err != nil {
		return err
	}
	return Gate(entries, threshold)
}
