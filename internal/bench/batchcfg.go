// BatchConfig is the single source of truth for dataplane burst
// sizing across the bench suites. Before it, the burst knob lived in
// three places (dataplane.DefaultBatchSize, the fastpath bench's
// -batch parameter, ad-hoc sweep literals); every suite now resolves
// its effective batch size and sweep through one type, so "what batch
// sizes did this report use" has exactly one answer.
package bench

import "github.com/in-net/innet/internal/dataplane"

// DefaultBatchSweep is the burst-size ladder swept by the pipeline
// bench: per-packet degenerate (1), a small burst, the netfront ring
// default, and a large burst.
var DefaultBatchSweep = []int{1, 8, 32, 128}

// BatchConfig resolves burst sizing for a measurement run.
type BatchConfig struct {
	// Size is the primary burst size (0 = dataplane.DefaultBatchSize).
	Size int
	// Sweep is the burst ladder for sweeping suites (nil =
	// DefaultBatchSweep).
	Sweep []int
}

// BatchSize returns the effective primary burst size.
func (c BatchConfig) BatchSize() int {
	if c.Size > 0 {
		return c.Size
	}
	return dataplane.DefaultBatchSize
}

// BatchSweep returns the effective burst ladder.
func (c BatchConfig) BatchSweep() []int {
	if len(c.Sweep) > 0 {
		return c.Sweep
	}
	return append([]int(nil), DefaultBatchSweep...)
}
