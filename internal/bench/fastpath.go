// Fast-path benchmark: before/after numbers for the three PR-3
// optimizations — admission-verdict caching in the controller,
// flow-hash sharding in the vswitch, and batched packet delivery in
// the dataplane. The rows are real measurements on this machine; the
// JSON form (FastPathJSON) is what CI archives as BENCH_pr3.json.
package bench

import (
	"encoding/json"
	"fmt"
	"runtime"
	"sort"
	"sync"
	"time"

	"github.com/in-net/innet/internal/controller"
	"github.com/in-net/innet/internal/dataplane"
	"github.com/in-net/innet/internal/packet"
	"github.com/in-net/innet/internal/security"
	"github.com/in-net/innet/internal/symexec"
	"github.com/in-net/innet/internal/topology"
	"github.com/in-net/innet/internal/vswitch"
)

// BenchFormat is the schema identifier every innet-bench JSON report
// carries in its "format" field, so downstream tooling can detect
// incompatible report layouts (see docs/FORMATS.md §8).
const BenchFormat = "innet-bench/1"

// FastPathResult is the machine-readable form of the fast-path
// benchmark (serialized to BENCH_pr3.json by innet-bench -json).
type FastPathResult struct {
	Format string `json:"format"`

	// Admission: deploy+kill cycles of an identical module, cold
	// (cache disabled) vs warm (cache enabled, steady state).
	AdmissionColdOpsPerSec float64 `json:"admission_cold_ops_per_sec"`
	AdmissionWarmOpsPerSec float64 `json:"admission_warm_ops_per_sec"`
	AdmissionSpeedup       float64 `json:"admission_speedup"`
	CacheHits              uint64  `json:"cache_hits"`
	CacheMisses            uint64  `json:"cache_misses"`

	// Dispatch: concurrent senders on one switch, 1 shard (the old
	// single dispatch lock) vs Shards shards.
	DispatchGoroutines   int     `json:"dispatch_goroutines"`
	DispatchShards       int     `json:"dispatch_shards"`
	Dispatch1ShardPPS    float64 `json:"dispatch_1shard_pps"`
	DispatchShardedPPS   float64 `json:"dispatch_sharded_pps"`
	DispatchSpeedup      float64 `json:"dispatch_speedup"`
	DispatchBatchPPS     float64 `json:"dispatch_batch_pps"`
	DispatchBatchSpeedup float64 `json:"dispatch_batch_speedup"`
	// Affine: each sender's flows hash to its own shard (RSS-style
	// flow steering — the deployment the sharding targets).
	DispatchAffinePPS     float64 `json:"dispatch_affine_pps"`
	DispatchAffineSpeedup float64 `json:"dispatch_affine_speedup"`

	// Dataplane: producer/consumer handoff per packet vs per batch.
	BatchSize           int     `json:"batch_size"`
	DataplanePerPktPPS  float64 `json:"dataplane_per_packet_pps"`
	DataplaneBatchedPPS float64 `json:"dataplane_batched_pps"`
	DataplaneSpeedup    float64 `json:"dataplane_speedup"`

	GOMAXPROCS int `json:"gomaxprocs"`
	NumCPU     int `json:"num_cpu"`
}

const fastPathModule = `
FromNetfront() ->
IPFilter(allow udp port 1500) ->
IPRewriter(pattern - - 10.1.15.133 - 0 0)
-> TimedUnqueue(120,100)
-> dst::ToNetfront()
`

const fastPathReqs = `
reach from internet udp
-> Batcher:dst:0 dst 10.1.15.133
-> client dst port 1500
const proto && dst port && payload
`

// measureAdmission times deploy+kill cycles of one identical module.
func measureAdmission(cached bool, cycles int) (float64, symexec.CacheStats) {
	topo, err := topology.PaperFig3()
	if err != nil {
		panic(err)
	}
	opts := controller.Options{AdmissionCache: -1}
	if cached {
		opts.AdmissionCache = 0 // default capacity
	}
	c, err := controller.NewWithOptions(topo, "reach from internet tcp src port 80 -> HTTPOptimizer -> client", opts)
	if err != nil {
		panic(err)
	}
	req := controller.Request{
		Tenant:       "bench",
		ModuleName:   "Batcher",
		Config:       fastPathModule,
		Requirements: fastPathReqs,
		Trust:        security.Client,
	}
	// One untimed cycle warms code paths (and, when caching, the
	// cache: every later cycle is the steady re-deploy state).
	dep, err := c.Deploy(req)
	if err != nil {
		panic(err)
	}
	if err := c.Kill(dep.ID); err != nil {
		panic(err)
	}
	start := time.Now()
	for i := 0; i < cycles; i++ {
		dep, err := c.Deploy(req)
		if err != nil {
			panic(err)
		}
		if err := c.Kill(dep.ID); err != nil {
			panic(err)
		}
	}
	elapsed := time.Since(start)
	return float64(cycles) / elapsed.Seconds(), c.CacheStats()
}

// measureDispatch hammers one switch from g goroutines, each goroutine
// owning distinct flows, and returns packets/sec. With affine, each
// sender's flows are chosen to land on "its" shard (sender w mod
// shards), modelling RSS-style flow steering where a core receives
// the flows that hash to its queue; otherwise each sender's flows
// spread across all shards.
func measureDispatch(shards, g, perG int, affine bool) float64 {
	s := vswitch.NewSharded(shards)
	mod := packet.MustParseIP("198.51.100.10")
	s.Install(vswitch.Rule{Priority: 10, Match: vswitch.Match{DstIP: mod}, Action: vswitch.ActToModule, Module: mod})
	s.ToModule = func(uint32, *packet.Packet) {}
	flows := func(w int) []*packet.Packet {
		pkts := make([]*packet.Packet, 0, 16)
		for port := 1024 + w; len(pkts) < cap(pkts); port++ {
			p := &packet.Packet{
				Protocol: packet.ProtoUDP,
				SrcIP:    packet.MustParseIP("8.8.8.8"),
				DstIP:    mod,
				SrcPort:  uint16(port),
				DstPort:  1500, TTL: 64,
			}
			if affine && s.ShardOf(p.Tuple()) != w%s.Shards() {
				continue
			}
			pkts = append(pkts, p)
		}
		return pkts
	}
	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < g; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			pkts := flows(w)
			for i := 0; i < perG; i++ {
				s.Process(pkts[i%len(pkts)])
			}
		}(w)
	}
	wg.Wait()
	return float64(g*perG) / time.Since(start).Seconds()
}

// measureDispatchBatch is measureDispatch with per-batch table locking
// (ProcessBatch) instead of per-packet Process.
func measureDispatchBatch(shards, g, perG, batch int) float64 {
	s := vswitch.NewSharded(shards)
	mod := packet.MustParseIP("198.51.100.10")
	s.Install(vswitch.Rule{Priority: 10, Match: vswitch.Match{DstIP: mod}, Action: vswitch.ActToModule, Module: mod})
	s.ToModule = func(uint32, *packet.Packet) {}
	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < g; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			pkts := make([]*packet.Packet, batch)
			for i := range pkts {
				pkts[i] = &packet.Packet{
					Protocol: packet.ProtoUDP,
					SrcIP:    packet.MustParseIP("8.8.8.8"),
					DstIP:    mod,
					SrcPort:  uint16(1000 + w*batch + i%16),
					DstPort:  1500, TTL: 64,
				}
			}
			// Bursts arrive shard-grouped (per-queue NIC bursts), so
			// ProcessBatch holds each shard lock once per run.
			sort.SliceStable(pkts, func(i, j int) bool {
				return s.ShardOf(pkts[i].Tuple()) < s.ShardOf(pkts[j].Tuple())
			})
			for done := 0; done < perG; done += batch {
				s.ProcessBatch(pkts)
			}
		}(w)
	}
	wg.Wait()
	return float64(g*perG) / time.Since(start).Seconds()
}

// FastPathMeasure runs all three experiments. quick shrinks the
// iteration counts for CI; batch is the dataplane burst size (0 =
// dataplane.DefaultBatchSize).
func FastPathMeasure(quick bool, batch int) *FastPathResult {
	batch = BatchConfig{Size: batch}.BatchSize()
	cycles, pkts, trials := 400, 2_000_000, 3
	if quick {
		cycles, pkts, trials = 120, 500_000, 2
	}

	r := &FastPathResult{
		Format:             BenchFormat,
		BatchSize:          batch,
		DispatchGoroutines: 4,
		DispatchShards:     vswitch.DefaultShards,
		GOMAXPROCS:         runtime.GOMAXPROCS(0),
		NumCPU:             runtime.NumCPU(),
	}

	cold, _ := measureAdmission(false, cycles)
	warm, stats := measureAdmission(true, cycles)
	r.AdmissionColdOpsPerSec, r.AdmissionWarmOpsPerSec = cold, warm
	r.AdmissionSpeedup = warm / cold
	r.CacheHits, r.CacheMisses = stats.Hits, stats.Misses

	// The dispatch configurations are measured PAIRED: one trial runs
	// all four back to back and the trial with the highest aggregate
	// throughput — the one least perturbed by background load — supplies
	// every dispatch figure. Independent best-of per configuration lets
	// a noisy phase land on one side of the ratio only, which on a
	// shared box swings the speedup by ±20%.
	perG := pkts / r.DispatchGoroutines
	type dispatchTrial struct{ one, sharded, affine, batch float64 }
	var bestTrial dispatchTrial
	for i := 0; i < trials; i++ {
		tr := dispatchTrial{
			one:     measureDispatch(1, r.DispatchGoroutines, perG, false),
			sharded: measureDispatch(r.DispatchShards, r.DispatchGoroutines, perG, false),
			affine:  measureDispatch(r.DispatchShards, r.DispatchGoroutines, perG, true),
			batch:   measureDispatchBatch(r.DispatchShards, r.DispatchGoroutines, perG, batch),
		}
		if tr.one+tr.sharded+tr.affine+tr.batch > bestTrial.one+bestTrial.sharded+bestTrial.affine+bestTrial.batch {
			bestTrial = tr
		}
	}
	r.Dispatch1ShardPPS = bestTrial.one
	r.DispatchShardedPPS = bestTrial.sharded
	r.DispatchSpeedup = r.DispatchShardedPPS / r.Dispatch1ShardPPS
	r.DispatchAffinePPS = bestTrial.affine
	r.DispatchAffineSpeedup = r.DispatchAffinePPS / r.Dispatch1ShardPPS
	r.DispatchBatchPPS = bestTrial.batch
	r.DispatchBatchSpeedup = r.DispatchBatchPPS / r.Dispatch1ShardPPS

	run, err := dataplane.NewRunnerString(`FromNetfront() -> CheckIPHeader() -> ToNetfront()`)
	if err != nil {
		panic(err)
	}
	tmpl := dataplane.UDPTemplate(64)
	r.DataplanePerPktPPS = run.MeasureBatchedBest(tmpl, pkts, 1, trials).PPS
	r.DataplaneBatchedPPS = run.MeasureBatchedBest(tmpl, pkts, batch, trials).PPS
	r.DataplaneSpeedup = r.DataplaneBatchedPPS / r.DataplanePerPktPPS
	return r
}

// FastPath measures and renders the fast-path benchmark.
func FastPath(quick bool, batch int) *Table {
	return FastPathTable(FastPathMeasure(quick, batch))
}

// FastPathTable renders an already-measured result as a table.
func FastPathTable(r *FastPathResult) *Table {
	t := &Table{
		ID:      "PR3",
		Title:   "fast-path admission & dispatch (cached symexec, sharded vswitch, batched dataplane)",
		Columns: []string{"experiment", "before", "after", "speedup"},
	}
	t.AddRow("admission deploy+kill (ops/s)", f1(r.AdmissionColdOpsPerSec), f1(r.AdmissionWarmOpsPerSec), f2(r.AdmissionSpeedup)+"x")
	t.AddRow(fmt.Sprintf("dispatch %dg (Mpps)", r.DispatchGoroutines), f2(r.Dispatch1ShardPPS/1e6), f2(r.DispatchShardedPPS/1e6), f2(r.DispatchSpeedup)+"x")
	t.AddRow(fmt.Sprintf("dispatch %dg affine (Mpps)", r.DispatchGoroutines), f2(r.Dispatch1ShardPPS/1e6), f2(r.DispatchAffinePPS/1e6), f2(r.DispatchAffineSpeedup)+"x")
	t.AddRow(fmt.Sprintf("dispatch %dg batch=%d (Mpps)", r.DispatchGoroutines, r.BatchSize), f2(r.Dispatch1ShardPPS/1e6), f2(r.DispatchBatchPPS/1e6), f2(r.DispatchBatchSpeedup)+"x")
	t.AddRow(fmt.Sprintf("dataplane batch=%d (Mpps)", r.BatchSize), f2(r.DataplanePerPktPPS/1e6), f2(r.DataplaneBatchedPPS/1e6), f2(r.DataplaneSpeedup)+"x")
	t.Notes = append(t.Notes,
		fmt.Sprintf("admission cache: %d hits / %d misses over the warm run", r.CacheHits, r.CacheMisses),
		fmt.Sprintf("%d shards, %d senders, GOMAXPROCS=%d, NumCPU=%d", r.DispatchShards, r.DispatchGoroutines, r.GOMAXPROCS, r.NumCPU),
		"before = cache disabled / 1 shard / per-packet handoff; after = defaults")
	return t
}

// JSON renders the result as the BENCH_pr3.json payload.
func (r *FastPathResult) JSON() ([]byte, error) {
	return json.MarshalIndent(r, "", "  ")
}
