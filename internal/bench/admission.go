// Admission-scaling benchmark: throughput and latency for the
// parallel + incremental verification work — cold admission ops/s as
// the symexec worker pool widens, the per-element memo's effect on a
// structurally shared multi-tenant corpus, and the cost of re-serving
// a warm query across an epoch flip under delta vs wholesale
// invalidation. The JSON form is what CI archives as
// BENCH_admission.json.
package bench

import (
	"encoding/json"
	"fmt"
	"runtime"
	"time"

	"github.com/in-net/innet/internal/controller"
	"github.com/in-net/innet/internal/security"
	"github.com/in-net/innet/internal/symexec"
	"github.com/in-net/innet/internal/topology"
)

// AdmissionScalingResult is the machine-readable form of the
// admission-scaling benchmark (BENCH_admission.json).
type AdmissionScalingResult struct {
	Format string `json:"format"`

	// Cold admission (whole-config verdict cache DISABLED, so every
	// deploy runs full verification) across worker-pool widths, memo
	// off vs on. The corpus rotates tenant modules sharing a
	// firewall→nat prefix, so the memo row also shows cross-tenant
	// sub-chain sharing.
	Workers           []int     `json:"workers"`
	ColdOpsPerSec     []float64 `json:"cold_ops_per_sec"`
	ColdMemoOpsPerSec []float64 `json:"cold_memo_ops_per_sec"`

	// Headline: cold ops/s at the widest pool with the memo on, and
	// its speedup over 1 worker / no memo (the sequential PR-3 cold
	// path).
	SequentialOpsPerSec float64 `json:"sequential_ops_per_sec"`
	BestOpsPerSec       float64 `json:"best_ops_per_sec"`
	ColdSpeedup         float64 `json:"cold_speedup"`

	// Memo effectiveness over the memo-on sweep.
	MemoHits    uint64  `json:"memo_hits"`
	MemoMisses  uint64  `json:"memo_misses"`
	MemoHitRate float64 `json:"memo_hit_rate"`

	// Incremental re-verification: a warm query re-served after a
	// platform health flip (an epoch mutation that touches none of
	// the query's dependencies). Delta invalidation answers from
	// cache; wholesale re-runs the symbolic execution.
	DeltaReverifyMicros     float64 `json:"delta_reverify_micros"`
	WholesaleReverifyMicros float64 `json:"wholesale_reverify_micros"`
	ReverifySpeedup         float64 `json:"reverify_speedup"`

	GOMAXPROCS int `json:"gomaxprocs"`
	NumCPU     int `json:"num_cpu"`

	// Note flags measurement caveats (e.g. a single-CPU host, where
	// the worker pool cannot physically scale and cold_speedup
	// reflects only the memo and sequential optimizations).
	Note string `json:"note,omitempty"`
}

// admissionCorpus returns the rotating multi-tenant deploy requests:
// every module shares the firewall → nat entry chain (the memo's
// cross-tenant target) and fans out through a classifier so the
// symbolic frontier is wide enough for the worker pool to bite.
func admissionCorpus() []controller.Request {
	reqs := make([]controller.Request, 4)
	for i := range reqs {
		cfg := fmt.Sprintf(`
in :: FromNetfront();
fw :: IPFilter(allow src port 5060, allow src port 5061, allow src port 3478,
               allow dst port 5060, allow dst port 5061, allow dst port 3478,
               allow udp port 1500, allow tcp port 1500,
               allow dst port 8080, allow src port 8080,
               deny all);
nat :: IPRewriter(pattern - - 10.1.15.133 - 0 0);
cls :: IPClassifier(dst port 1500, -);
t :: Tee(2);
p0 :: SetDstPort(%d);
p1 :: SetDstPort(%d);
out0 :: ToNetfront(0);
out1 :: ToNetfront(1);
drop :: Discard();
in -> fw -> nat -> cls;
cls[0] -> t;
cls[1] -> drop;
t[0] -> p0 -> out0;
t[1] -> p1 -> out1;
`, 2000+2*i, 2001+2*i)
		reqs[i] = controller.Request{
			Tenant:     fmt.Sprintf("tenant-%d", i),
			ModuleName: fmt.Sprintf("Shared%d", i),
			Config:     cfg,
			Trust:      security.Client,
		}
	}
	return reqs
}

// measureAdmissionScaling times deploy+kill cycles over the rotating
// corpus with the whole-config cache disabled, so each cycle pays
// full verification through the given worker pool and memo setting.
func measureAdmissionScaling(workers int, memo bool, cycles int) (float64, symexec.MemoStats) {
	topo, err := topology.PaperFig3()
	if err != nil {
		panic(err)
	}
	opts := controller.Options{
		AdmissionCache:   -1,
		AdmissionWorkers: workers,
		ElementMemo:      -1,
	}
	if memo {
		opts.ElementMemo = 0 // default capacity
	}
	c, err := controller.NewWithOptions(topo, "reach from internet tcp src port 80 -> HTTPOptimizer -> client", opts)
	if err != nil {
		panic(err)
	}
	corpus := admissionCorpus()
	cycle := func(i int) {
		req := corpus[i%len(corpus)]
		dep, err := c.Deploy(req)
		if err != nil {
			panic(err)
		}
		if err := c.Kill(dep.ID); err != nil {
			panic(err)
		}
	}
	// One untimed pass over the corpus warms code paths (and, with
	// the memo, captures each shared sub-chain's recipes: the steady
	// state is replay, exactly as for a long-lived controller).
	for i := range corpus {
		cycle(i)
	}
	start := time.Now()
	for i := 0; i < cycles; i++ {
		cycle(i)
	}
	elapsed := time.Since(start)
	return float64(cycles) / elapsed.Seconds(), c.MemoStats()
}

// measureReverify times re-serving a warm query across platform
// health flips: each iteration flips one platform down (or back up)
// and re-issues the query. The flip bumps the epoch, so wholesale
// invalidation re-verifies from scratch every time; delta
// invalidation proves the flip irrelevant and answers from cache.
func measureReverify(wholesale bool, iters int) float64 {
	topo, err := topology.PaperFig3()
	if err != nil {
		panic(err)
	}
	c, err := controller.NewWithOptions(topo, "reach from internet tcp src port 80 -> HTTPOptimizer -> client",
		controller.Options{WholesaleInvalidation: wholesale})
	if err != nil {
		panic(err)
	}
	if _, err := c.Deploy(admissionCorpus()[0]); err != nil {
		panic(err)
	}
	const query = "reach from internet tcp src port 80 -> HTTPOptimizer -> client"
	if _, err := c.Query(query); err != nil { // populate
		panic(err)
	}
	start := time.Now()
	for i := 0; i < iters; i++ {
		if i%2 == 0 {
			c.MarkPlatformDown("Platform3")
		} else {
			c.MarkPlatformUp("Platform3")
		}
		if _, err := c.Query(query); err != nil {
			panic(err)
		}
	}
	return float64(time.Since(start).Microseconds()) / float64(iters)
}

// AdmissionScalingMeasure runs the full admission-scaling experiment.
func AdmissionScalingMeasure(quick bool) *AdmissionScalingResult {
	cycles, reverifies := 500, 400
	if quick {
		cycles, reverifies = 100, 100
	}
	r := &AdmissionScalingResult{
		Format:     BenchFormat,
		Workers:    []int{1, 2, 4, 8},
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
	}
	// Each cell is best-of-trials (fresh controller per trial): the
	// first measurement of a run otherwise absorbs process warm-up —
	// GC pacing, page faults — and masquerades as worker scaling.
	trials := 3
	if quick {
		trials = 2
	}
	best := func(workers int, memo bool) (float64, symexec.MemoStats) {
		var ops float64
		var st symexec.MemoStats
		for t := 0; t < trials; t++ {
			o, s := measureAdmissionScaling(workers, memo, cycles)
			if o > ops {
				ops, st = o, s
			}
		}
		return ops, st
	}
	var hits, misses uint64
	for _, w := range r.Workers {
		ops, _ := best(w, false)
		r.ColdOpsPerSec = append(r.ColdOpsPerSec, ops)
		mops, st := best(w, true)
		r.ColdMemoOpsPerSec = append(r.ColdMemoOpsPerSec, mops)
		hits += st.Hits
		misses += st.Misses + st.Unsupported
	}
	r.SequentialOpsPerSec = r.ColdOpsPerSec[0]
	r.BestOpsPerSec = r.ColdMemoOpsPerSec[len(r.ColdMemoOpsPerSec)-1]
	r.ColdSpeedup = r.BestOpsPerSec / r.SequentialOpsPerSec
	r.MemoHits, r.MemoMisses = hits, misses
	if hits+misses > 0 {
		r.MemoHitRate = float64(hits) / float64(hits+misses)
	}
	r.WholesaleReverifyMicros = measureReverify(true, reverifies)
	r.DeltaReverifyMicros = measureReverify(false, reverifies)
	if r.DeltaReverifyMicros > 0 {
		r.ReverifySpeedup = r.WholesaleReverifyMicros / r.DeltaReverifyMicros
	}
	if r.GOMAXPROCS == 1 {
		r.Note = "GOMAXPROCS=1: the symexec worker pool cannot run concurrently on this host, so per-worker rows differ only by scheduling noise"
	}
	return r
}

// AdmissionScaling measures and renders the admission-scaling
// benchmark.
func AdmissionScaling(quick bool) *Table {
	return AdmissionScalingTable(AdmissionScalingMeasure(quick))
}

// AdmissionScalingTable renders an already-measured result.
func AdmissionScalingTable(r *AdmissionScalingResult) *Table {
	t := &Table{
		ID:      "ADMISSION",
		Title:   "admission scaling (parallel symexec, per-element memo, delta invalidation)",
		Columns: []string{"workers", "cold ops/s", "cold+memo ops/s"},
	}
	for i, w := range r.Workers {
		t.AddRow(fmt.Sprintf("%d", w), f1(r.ColdOpsPerSec[i]), f1(r.ColdMemoOpsPerSec[i]))
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("cold speedup (8w+memo vs 1w sequential): %sx", f2(r.ColdSpeedup)),
		fmt.Sprintf("memo: %d hits / %d misses (hit rate %s)", r.MemoHits, r.MemoMisses, f2(r.MemoHitRate)),
		fmt.Sprintf("warm query across epoch flip: delta %sµs vs wholesale %sµs (%sx)",
			f1(r.DeltaReverifyMicros), f1(r.WholesaleReverifyMicros), f2(r.ReverifySpeedup)),
		fmt.Sprintf("GOMAXPROCS=%d, NumCPU=%d; whole-config verdict cache disabled in the ops/s rows", r.GOMAXPROCS, r.NumCPU))
	return t
}

// JSON renders the result as the BENCH_admission.json payload.
func (r *AdmissionScalingResult) JSON() ([]byte, error) {
	return json.MarshalIndent(r, "", "  ")
}
