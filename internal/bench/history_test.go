package bench

import (
	"errors"
	"path/filepath"
	"testing"
)

func entry(commit string, metrics map[string]float64) *HistoryEntry {
	e := NewHistoryEntry(commit, "test")
	for k, v := range metrics {
		e.Metrics[k] = v
	}
	return e
}

func TestHistoryAppendRead(t *testing.T) {
	path := filepath.Join(t.TempDir(), "BENCH_HISTORY.jsonl")
	if err := AppendHistory(path, entry("aaa", map[string]float64{"dispatch_batch_pps": 10e6})); err != nil {
		t.Fatal(err)
	}
	if err := AppendHistory(path, entry("bbb", map[string]float64{"dispatch_batch_pps": 11e6})); err != nil {
		t.Fatal(err)
	}
	got, err := ReadHistory(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0].Commit != "aaa" || got[1].Commit != "bbb" {
		t.Fatalf("entries = %+v", got)
	}
	if got[0].Format != HistoryFormat || got[0].Env != "test" {
		t.Fatalf("stamp = %+v", got[0])
	}
	if got[1].Metrics["dispatch_batch_pps"] != 11e6 {
		t.Fatalf("metrics = %v", got[1].Metrics)
	}
}

func TestGatePassesWithinThreshold(t *testing.T) {
	entries := []HistoryEntry{
		*entry("aaa", map[string]float64{"dispatch_batch_pps": 10e6, "admission_cold_ops_per_sec": 1000}),
		*entry("bbb", map[string]float64{"dispatch_batch_pps": 9e6, "admission_cold_ops_per_sec": 990}),
	}
	if err := Gate(entries, 0.15); err != nil {
		t.Fatalf("10%% drop should pass a 15%% gate: %v", err)
	}
}

func TestGateFailsOnRegression(t *testing.T) {
	entries := []HistoryEntry{
		*entry("aaa", map[string]float64{"dispatch_batch_pps": 10e6}),
		*entry("bbb", map[string]float64{"dispatch_batch_pps": 8e6}),
	}
	err := Gate(entries, 0.15)
	var ge *GateError
	if !errors.As(err, &ge) {
		t.Fatalf("20%% drop should fail a 15%% gate, got %v", err)
	}
	if ge.BaseCommit != "aaa" || len(ge.Regressed) != 1 {
		t.Fatalf("gate error = %+v", ge)
	}
}

func TestGateSkipsOtherEnvsAndNewMetrics(t *testing.T) {
	other := NewHistoryEntry("zzz", "laptop")
	other.Metrics["dispatch_batch_pps"] = 100e6 // different env: not a baseline
	entries := []HistoryEntry{
		*entry("aaa", map[string]float64{"dispatch_batch_pps": 10e6}),
		*other,
		// pipeline_compiled_pps appears for the first time: not gated.
		*entry("bbb", map[string]float64{"dispatch_batch_pps": 10e6, "pipeline_compiled_pps": 50e6}),
	}
	if err := Gate(entries, 0.15); err != nil {
		t.Fatal(err)
	}
	if err := Gate(entries[:2], 0.15); err != nil {
		t.Fatalf("no same-env baseline: %v", err)
	}
}

func TestGateEmptyHistory(t *testing.T) {
	if err := Gate(nil, 0.15); err != nil {
		t.Fatal(err)
	}
	if err := Gate([]HistoryEntry{*entry("aaa", nil)}, 0.15); err != nil {
		t.Fatal(err)
	}
}
