package bench

import (
	"strconv"
	"strings"
	"testing"
)

// cell parses a table cell as float.
func cell(t *testing.T, tb *Table, row, col int) float64 {
	t.Helper()
	v, err := strconv.ParseFloat(tb.Rows[row][col], 64)
	if err != nil {
		t.Fatalf("%s row %d col %d: %q not numeric", tb.ID, row, col, tb.Rows[row][col])
	}
	return v
}

func TestFig5Shape(t *testing.T) {
	tb := Fig5(true)
	if len(tb.Rows) != 15 {
		t.Fatalf("rows = %d", len(tb.Rows))
	}
	firstAvg := cell(t, tb, 0, 2)
	warmAvg := cell(t, tb, 5, 2)
	if firstAvg < 10 {
		t.Errorf("first-probe avg = %.1f ms, boot cost missing", firstAvg)
	}
	if warmAvg > firstAvg/5 {
		t.Errorf("warm probe avg %.2f vs first %.2f: RTT should collapse after boot", warmAvg, firstAvg)
	}
}

func TestFig6Shape(t *testing.T) {
	tb := Fig6(true)
	if len(tb.Rows) == 0 {
		t.Fatal("no rows")
	}
	for i := range tb.Rows {
		if tr := cell(t, tb, i, 2); tr < 16 || tr > 18.5 {
			t.Errorf("row %d transfer = %.2f s", i, tr)
		}
	}
}

func TestFig7Shape(t *testing.T) {
	tb := Fig7()
	first := cell(t, tb, 0, 2)
	last := cell(t, tb, len(tb.Rows)-1, 2)
	if last <= first {
		t.Error("resume latency must grow with resident VMs")
	}
	if first < 30 || last > 110 {
		t.Errorf("resume band %.1f..%.1f ms, Fig. 7 is ≈30-100 ms", first, last)
	}
}

func TestFig8Knee(t *testing.T) {
	tb := Fig8()
	at24 := cell(t, tb, 0, 1)
	var at144, at252 float64
	for i := range tb.Rows {
		switch tb.Rows[i][0] {
		case "144":
			at144 = cell(t, tb, i, 1)
		case "252":
			at252 = cell(t, tb, i, 1)
		}
	}
	if at24 < 9.5 || at144 < 9.5 {
		t.Errorf("line rate not sustained: 24->%.2f 144->%.2f Gb/s", at24, at144)
	}
	if at252 >= at144 || at252 < 7.5 || at252 > 9.3 {
		t.Errorf("252 configs -> %.2f Gb/s, want a moderate decline (paper ≈8.2)", at252)
	}
}

func TestFig9AllSeriesScale(t *testing.T) {
	tb := Fig9()
	last := tb.Rows[len(tb.Rows)-1]
	for col := 1; col <= 3; col++ {
		v, _ := strconv.ParseFloat(last[col], 64)
		if v < 7.5 {
			t.Errorf("1000 clients, col %d = %.2f Gb/s; platform should carry ≈8 Gb/s", col, v)
		}
	}
}

func TestFig10Linear(t *testing.T) {
	tb := Fig10(true)
	n := len(tb.Rows)
	smallC := cell(t, tb, 0, 1) + cell(t, tb, 0, 2)
	bigC := cell(t, tb, n-1, 1) + cell(t, tb, n-1, 2)
	sizes0, _ := strconv.Atoi(tb.Rows[0][0])
	sizesN, _ := strconv.Atoi(tb.Rows[n-1][0])
	if bigC <= smallC {
		t.Error("analysis time must grow with network size")
	}
	// Roughly linear: the per-middlebox cost at the large end must
	// not blow up more than ~8x over the small end (sub-quadratic).
	perSmall := smallC / float64(sizes0+4)
	perBig := bigC / float64(sizesN+4)
	if perBig > perSmall*8 {
		t.Errorf("per-middlebox cost grew %.1fx: not linear", perBig/perSmall)
	}
}

func TestTable1MatchesPaper(t *testing.T) {
	tb := Table1()
	if len(tb.Rows) != 12 {
		t.Fatalf("rows = %d", len(tb.Rows))
	}
	want := map[string][3]string{
		"IP Router":             {"X", "X", "OK"},
		"DPI":                   {"X", "X", "OK"},
		"NAT":                   {"X", "X", "OK"},
		"Transparent Proxy":     {"X", "X", "OK"},
		"Flow meter":            {"OK", "OK", "OK"},
		"Rate limiter":          {"OK", "OK", "OK"},
		"Firewall":              {"OK", "OK", "OK"},
		"Tunnel":                {"OK(s)", "OK", "OK"},
		"Multicast":             {"OK", "OK", "OK"},
		"DNS Server (stock)":    {"OK", "OK", "OK"},
		"Reverse proxy (stock)": {"OK", "OK", "OK"},
		"x86 VM":                {"OK(s)", "OK(s)", "OK"},
	}
	for _, row := range tb.Rows {
		w, ok := want[row[0]]
		if !ok {
			t.Errorf("unexpected row %q", row[0])
			continue
		}
		for i := 0; i < 3; i++ {
			if row[i+1] != w[i] {
				t.Errorf("%s col %d = %s want %s", row[0], i, row[i+1], w[i])
			}
		}
	}
}

func TestFig11Shape(t *testing.T) {
	if raceEnabled {
		t.Skip("wall-clock measurement is meaningless under the race detector")
	}
	tb := Fig11(true)
	// At 64 B the enforcer visibly costs; at 1472 B both are at line
	// rate (no measurable drop) — the paper's key shape.
	no64, sb64 := cell(t, tb, 0, 1), cell(t, tb, 0, 2)
	noBig, sbBig := cell(t, tb, len(tb.Rows)-1, 1), cell(t, tb, len(tb.Rows)-1, 2)
	if sb64 >= no64 {
		if sb64 < no64*1.1 {
			t.Skipf("64 B measurement inside noise (plain %.2f vs sandbox %.2f Mpps); machine under load", no64, sb64)
		}
		t.Errorf("64 B: sandbox %.2f >= plain %.2f Mpps", sb64, no64)
	}
	if noBig != sbBig {
		lineRate1472 := 10e9 / float64((1472+24)*8) / 1e6
		if noBig < lineRate1472*0.999 {
			t.Skipf("1472 B below line rate (%.2f Mpps); machine under load", noBig)
		}
		t.Errorf("1472 B: plain %.2f vs sandbox %.2f Mpps — both should hit the line-rate cap", noBig, sbBig)
	}
	sep64 := cell(t, tb, 0, 3)
	if sep64 > no64*0.35 {
		t.Errorf("separate-VM 64 B = %.2f Mpps vs plain %.2f: want ≈70%% drop", sep64, no64)
	}
}

func TestFig12SpreadAndFlatness(t *testing.T) {
	tb := Fig12()
	for i := range tb.Rows {
		nat := cell(t, tb, i, 1)
		fm := cell(t, tb, i, 4)
		if nat > fm {
			t.Errorf("row %d: nat %.2f > flowmeter %.2f", i, nat, fm)
		}
		if nat < 7 {
			t.Errorf("row %d: nat %.2f Gb/s too low for Fig. 12", i, nat)
		}
	}
}

func TestFig13Monotone(t *testing.T) {
	tb := Fig13()
	prev := 1e18
	for i := range tb.Rows {
		v := cell(t, tb, i, 1)
		if v >= prev {
			t.Errorf("row %d: %.1f mW not decreasing", i, v)
		}
		prev = v
	}
	if first := cell(t, tb, 0, 1); first < 220 || first > 260 {
		t.Errorf("30 s batch = %.1f mW, paper ≈240", first)
	}
}

func TestFig14Ratios(t *testing.T) {
	tb := Fig14(true)
	for i := range tb.Rows {
		loss := cell(t, tb, i, 0)
		if loss == 0 {
			continue
		}
		ratio := cell(t, tb, i, 3)
		if ratio < 1.6 || ratio > 7 {
			t.Errorf("loss %.0f%%: udp/tcp = %.2f, want the paper's 2-5x regime", loss, ratio)
		}
	}
}

func TestFig15Recovery(t *testing.T) {
	tb := Fig15(true)
	// Find a row in the attack window and compare series.
	for i := range tb.Rows {
		sec, _ := strconv.Atoi(tb.Rows[i][0])
		if sec == 480 {
			single := cell(t, tb, i, 1)
			withIN := cell(t, tb, i, 2)
			if single > 120 {
				t.Errorf("single-server under attack = %.0f req/s", single)
			}
			if withIN < 200 {
				t.Errorf("defended under attack = %.0f req/s", withIN)
			}
			return
		}
	}
	t.Fatal("no row at t=480s")
}

func TestFig16Ratios(t *testing.T) {
	tb := Fig16()
	var med, p90 [2]float64
	for i := range tb.Rows {
		switch tb.Rows[i][0] {
		case "50.0":
			med[0], med[1] = cell(t, tb, i, 1), cell(t, tb, i, 2)
		case "90.0":
			p90[0], p90[1] = cell(t, tb, i, 1), cell(t, tb, i, 2)
		}
	}
	if r := med[0] / med[1]; r < 1.5 || r > 3.5 {
		t.Errorf("median ratio = %.2f", r)
	}
	if r := p90[0] / p90[1]; r < 2.5 || r > 6.5 {
		t.Errorf("p90 ratio = %.2f", r)
	}
}

func TestMAWIInBands(t *testing.T) {
	tb := MAWI()
	for i := range tb.Rows {
		conns := cell(t, tb, i, 2)
		clients := cell(t, tb, i, 3)
		if conns < 1200 || conns > 4500 {
			t.Errorf("day %d conns = %.0f", i, conns)
		}
		if clients < 300 || clients > 1000 {
			t.Errorf("day %d clients = %.0f", i, clients)
		}
	}
}

func TestControllerLatencySmall(t *testing.T) {
	tb := ControllerLatency()
	total := cell(t, tb, 0, 1) + cell(t, tb, 1, 1)
	if total <= 0 || total > 5000 {
		t.Errorf("handling time = %.1f ms", total)
	}
}

func TestHTTPvsHTTPSTable(t *testing.T) {
	tb := HTTPvsHTTPS()
	http, https := cell(t, tb, 0, 1), cell(t, tb, 1, 1)
	if https <= http {
		t.Error("TLS should cost more")
	}
}

func TestTableString(t *testing.T) {
	tb := &Table{
		ID: "T", Title: "demo",
		Columns: []string{"a", "bb"},
		Notes:   []string{"hello"},
	}
	tb.AddRow("1", "2")
	s := tb.String()
	for _, want := range []string{"T — demo", "a", "bb", "1", "2", "note: hello"} {
		if !strings.Contains(s, want) {
			t.Errorf("String() missing %q:\n%s", want, s)
		}
	}
}

func TestAllQuickRuns(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	tables := All(true)
	if len(tables) != 16 {
		t.Fatalf("tables = %d", len(tables))
	}
	for _, tb := range tables {
		if tb.ID == "" || len(tb.Rows) == 0 {
			t.Errorf("table %q empty", tb.ID)
		}
	}
}
