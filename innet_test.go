package innet

import (
	"strings"
	"testing"
)

const exampleBatcher = `
FromNetfront() ->
IPFilter(allow udp port 1500) ->
IPRewriter(pattern - - 10.1.15.133 - 0 0)
-> TimedUnqueue(120,100)
-> dst::ToNetfront()
`

func TestPublicAPIDeployFlow(t *testing.T) {
	topo, err := Fig3Topology()
	if err != nil {
		t.Fatal(err)
	}
	ctl, err := NewController(topo, "reach from internet tcp src port 80 -> HTTPOptimizer -> client")
	if err != nil {
		t.Fatal(err)
	}
	dep, err := ctl.Deploy(Request{
		Tenant:     "alice",
		ModuleName: "Batcher",
		Config:     exampleBatcher,
		Requirements: `
reach from internet udp
-> Batcher:dst:0 dst 10.1.15.133
-> client dst port 1500
const proto && dst port && payload
`,
		Trust: TrustClient,
	})
	if err != nil {
		t.Fatal(err)
	}
	if dep.Platform != "Platform3" {
		t.Errorf("platform = %s", dep.Platform)
	}
	if err := ctl.Kill(dep.ID); err != nil {
		t.Fatal(err)
	}
}

func TestParseHelpers(t *testing.T) {
	if err := ParseClick(exampleBatcher); err != nil {
		t.Errorf("ParseClick: %v", err)
	}
	if err := ParseClick("garbage ::::"); err == nil {
		t.Error("bad click accepted")
	}
	if err := ParseRequirements("reach from internet -> client"); err != nil {
		t.Errorf("ParseRequirements: %v", err)
	}
	if err := ParseRequirements("nonsense"); err == nil {
		t.Error("bad requirements accepted")
	}
}

func TestElementClassesExposed(t *testing.T) {
	classes := ElementClasses()
	if len(classes) < 20 {
		t.Errorf("classes = %d", len(classes))
	}
	found := false
	for _, c := range classes {
		if c == "IPRewriter" {
			found = true
		}
	}
	if !found {
		t.Error("IPRewriter missing")
	}
}

func TestNewTopologyValidation(t *testing.T) {
	if _, err := NewTopology("t", "not-a-prefix"); err == nil {
		t.Error("bad prefix accepted")
	}
	topo, err := NewTopology("t", "10.0.0.0/8")
	if err != nil {
		t.Fatal(err)
	}
	if topo == nil {
		t.Fatal("nil topology")
	}
}

func TestFig1Topology(t *testing.T) {
	topo, err := Fig1Topology()
	if err != nil {
		t.Fatal(err)
	}
	if len(topo.Platforms()) != 1 {
		t.Error("fig1 platforms")
	}
}

func TestRejectionErrorSurface(t *testing.T) {
	topo, _ := Fig3Topology()
	ctl, err := NewController(topo, "")
	if err != nil {
		t.Fatal(err)
	}
	_, err = ctl.Deploy(Request{Tenant: "m", ModuleName: "atk", Trust: TrustThirdParty,
		Config: `
in :: FromNetfront();
atk :: SetIPDst(203.0.113.99);
out :: ToNetfront();
in -> atk -> out;
`})
	var rej *RejectionError
	if err == nil {
		t.Fatal("attack module deployed")
	}
	if re, ok := err.(*RejectionError); ok {
		rej = re
	}
	if rej == nil || !strings.Contains(rej.Error(), "rejected") {
		t.Errorf("error = %v", err)
	}
}
