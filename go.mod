module github.com/in-net/innet

go 1.22
