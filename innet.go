// Package innet is the public API of the In-Net reproduction: an
// architecture that lets untrusted endpoints and content providers
// deploy custom in-network packet processing (Click configurations)
// on platforms owned by a network operator, with static analysis —
// symbolic execution over abstract element models — standing between
// tenant requests and the operator's network (Stoenescu et al.,
// "In-Net: In-Network Processing for the Masses", EuroSys 2015).
//
// The typical flow:
//
//	topo, _ := innet.Fig3Topology()           // or build your own
//	ctl, _ := innet.NewController(topo, operatorPolicy)
//	dep, err := ctl.Deploy(innet.Request{
//	    Tenant:     "alice",
//	    ModuleName: "Batcher",
//	    Config:     batcherClickSource,
//	    Requirements: "reach from internet udp -> Batcher:dst:0 -> client",
//	    Trust:      innet.TrustClient,
//	})
//
// Deploy statically verifies the request: the client's reachability
// and invariant requirements, the operator's own policy, and the
// security rules (anti-spoofing and default-off destination
// authorization). Statically-unprovable modules are wrapped in a
// ChangeEnforcer sandbox; provably-unsafe ones are rejected.
//
// Subpackages under internal implement the substrates: the Click
// element framework and ~30 element classes, the configuration and
// flow-specification languages, the symbolic execution engine, the
// ClickOS-style platform simulator and the evaluation harnesses. See
// DESIGN.md for the system inventory and EXPERIMENTS.md for the
// paper-figure reproductions.
package innet

import (
	"github.com/in-net/innet/internal/click"
	"github.com/in-net/innet/internal/clicklang"
	"github.com/in-net/innet/internal/controller"
	_ "github.com/in-net/innet/internal/elements" // register standard element classes
	"github.com/in-net/innet/internal/packet"
	"github.com/in-net/innet/internal/policy"
	"github.com/in-net/innet/internal/security"
	"github.com/in-net/innet/internal/topology"
)

// Controller is the operator's control plane: it verifies and places
// tenant processing modules.
type Controller = controller.Controller

// Request is a tenant's deployment request.
type Request = controller.Request

// Deployment describes a placed processing module.
type Deployment = controller.Deployment

// RejectionError explains a refused request.
type RejectionError = controller.RejectionError

// QueryResult answers a reachability query (Controller.Query): the
// probe of the paper's protocol-tunneling use case.
type QueryResult = controller.QueryResult

// Topology is the operator's network model.
type Topology = topology.Topology

// Trust classes for requests (the columns of the paper's Table 1).
const (
	TrustThirdParty = security.ThirdParty
	TrustClient     = security.Client
	TrustOperator   = security.Operator
)

// Stock module names accepted in Request.Stock.
const (
	StockReverseProxy  = controller.StockReverseProxy
	StockExplicitProxy = controller.StockExplicitProxy
	StockGeoDNS        = controller.StockGeoDNS
	StockX86VM         = controller.StockX86VM
)

// NewController builds a controller for a topology and the operator's
// own reach-statement policy (may be empty).
func NewController(topo *Topology, operatorPolicy string) (*Controller, error) {
	return controller.New(topo, operatorPolicy)
}

// NewTopology starts an empty operator topology with the given
// residential-client subnet in CIDR form.
func NewTopology(name, clientNet string) (*Topology, error) {
	pfx, err := packet.ParsePrefix(clientNet)
	if err != nil {
		return nil, err
	}
	return topology.New(name, pfx), nil
}

// ParseTopology reads an operator network description in the text
// format documented at topology.Parse (endpoints, routers with LPM
// tables, Click middleboxes, platforms with module pools, links).
func ParseTopology(src string) (*Topology, error) { return topology.Parse(src) }

// Fig1Topology returns the paper's Fig. 1 example network (client
// behind a UDP-only stateful firewall, one public platform).
func Fig1Topology() (*Topology, error) { return topology.PaperFig1() }

// Fig3Topology returns the paper's Fig. 3 example network (three
// platforms, HTTP optimizer on the policy-routed bottom path).
func Fig3Topology() (*Topology, error) { return topology.PaperFig3() }

// ParseClick parses Click configuration source, returning an error
// with line information on syntax problems. Useful for validating
// tenant configurations before submission.
func ParseClick(src string) error {
	cfg, err := clicklang.Parse(src)
	if err != nil {
		return err
	}
	_, err = click.Build(cfg)
	return err
}

// ParseRequirements validates reach-statement text.
func ParseRequirements(src string) error {
	_, err := policy.ParseAll(src)
	return err
}

// ElementClasses lists the registered Click element classes tenants
// may use.
func ElementClasses() []string { return click.Classes() }
