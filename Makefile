# Standard entry points for the In-Net reproduction. Everything is
# plain `go` — this file just names the common invocations.

GO ?= go

.PHONY: all build test race cover bench bench-fast bench-telemetry bench-replication bench-admission bench-pipeline bench-all bench-gate smoke-telemetry lint-metrics experiments examples fuzz fmt vet clean golden chaos chaos-replication chaos-quorum

# Commit id stamped into BENCH_HISTORY.jsonl entries; CI overrides it.
COMMIT ?= $(shell git rev-parse --short HEAD 2>/dev/null || echo unknown)
BENCH_ENV ?= local

all: build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

cover:
	$(GO) test -cover ./...

# The paper's evaluation as testing.B benchmarks.
bench:
	$(GO) test -bench=. -benchmem .

# The fast-path measurements (admission cache, sharded dispatch,
# batched dataplane); writes the JSON report described in
# docs/FORMATS.md §8.
bench-fast:
	$(GO) run ./cmd/innet-bench -quick -only fastpath -json BENCH_pr3.json

# The telemetry overhead pair (dispatch and admission throughput,
# registry dark vs attached + continuously scraped); writes the JSON
# report described in docs/FORMATS.md §8.
bench-telemetry:
	$(GO) run ./cmd/innet-bench -quick -only telemetry -telemetry-json BENCH_telemetry.json

# Failover time (leader kill -> first successful admission on the
# promoted standby); writes BENCH_replication.json (innet-bench/1).
bench-replication:
	$(GO) run ./cmd/innet-bench -quick -only replication -replication-json BENCH_replication.json

# Admission scaling (parallel symexec workers, per-element memo,
# delta re-verification); writes BENCH_admission.json (innet-bench/1).
bench-admission:
	$(GO) run ./cmd/innet-bench -quick -only admission -admission-json BENCH_admission.json

# Compiled run-to-completion pipeline vs graph-walk dispatch (burst
# sweep + 1/2/4/8 worker engine sweep); writes BENCH_pipeline.json
# (docs/FORMATS.md §13).
bench-pipeline:
	$(GO) run ./cmd/innet-bench -quick -pipeline -pipeline-json BENCH_pipeline.json

# Every bench suite in one run, all JSON reports under the
# innet-bench/1 schema, plus one appended per-commit entry in
# BENCH_HISTORY.jsonl (docs/FORMATS.md §14).
bench-all:
	$(GO) run ./cmd/innet-bench -quick \
		-only fastpath,telemetry,replication,admission,pipeline \
		-json BENCH_pr3.json \
		-telemetry-json BENCH_telemetry.json \
		-replication-json BENCH_replication.json \
		-admission-json BENCH_admission.json \
		-pipeline-json BENCH_pipeline.json \
		-history BENCH_HISTORY.jsonl -commit $(COMMIT) -env $(BENCH_ENV)

# Fail when the newest BENCH_HISTORY.jsonl entry regressed >15% vs
# the previous same-env entry (dispatch pps, cold admission ops/s,
# compiled pipeline pps).
bench-gate:
	./scripts/bench_gate.sh BENCH_HISTORY.jsonl

# Boot a real innetd, deploy a module, drive packets, and assert the
# observability endpoints serve every required metric family and a
# complete admission trace.
smoke-telemetry:
	./scripts/smoke_telemetry.sh

# Fail when a registered metric name breaks the innet_[a-z0-9_]+
# convention or is missing from the docs/FORMATS.md §9 metrics table.
lint-metrics:
	./scripts/lint_metrics.sh

# The paper's evaluation as printed tables (quick variant: seconds).
experiments:
	$(GO) run ./cmd/innet-bench -quick

experiments-full:
	$(GO) run ./cmd/innet-bench

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/pushnotify
	$(GO) run ./examples/protocoltunnel
	$(GO) run ./examples/ddos
	$(GO) run ./examples/cdn

# Short fuzzing passes over every parser.
fuzz:
	$(GO) test -fuzz=FuzzParse -fuzztime=30s ./internal/clicklang/
	$(GO) test -fuzz=FuzzSplitArgs -fuzztime=15s ./internal/clicklang/
	$(GO) test -fuzz=FuzzCanonicalConfig -fuzztime=30s ./internal/clicklang/
	$(GO) test -fuzz=FuzzMemoKey -fuzztime=30s ./internal/clicklang/
	$(GO) test -fuzz=FuzzParse -fuzztime=30s ./internal/flowspec/
	$(GO) test -fuzz=FuzzParse -fuzztime=30s ./internal/policy/
	$(GO) test -fuzz=FuzzParse -fuzztime=30s ./internal/topology/
	$(GO) test -fuzz=FuzzJournalReplay -fuzztime=30s ./internal/journal/

# The seeded chaos suite: fault-injected cluster runs with the full
# multi-seed sweep (the sweep is skipped under `go test -short`).
chaos:
	$(GO) test ./internal/faults/ -run 'TestChaos' -count=1 -v

# The replication chaos suite under the race detector: leader kills,
# leader<->standby partitions and stream lag over real loopback TCP,
# with differential convergence checks against unfaulted runs, plus
# the flight-recorder sequence check (crash -> election -> failover).
chaos-replication:
	$(GO) test -race ./internal/faults/ ./internal/replication/ -run 'TestRepl|TestPromotion|TestDeployIdempotent|TestFlightRecorder' -count=1 -v

# The quorum chaos suite under the race detector: 3- and 5-node
# groups with elections — leader crash mid-deploy, symmetric and
# minority partitions, follower lag and rolling restarts, all
# converging to byte-identical journals and differential-checked
# against unfaulted runs.
chaos-quorum:
	$(GO) test -race -timeout 300s ./internal/faults/ -run 'TestGroup' -count=1 -v
	$(GO) test -race -timeout 300s ./internal/replication/ -run 'TestQuorum|TestVote|TestV1|TestLeaderDowngrades|TestFencedNodeRefuses' -count=1 -v

# Refresh the golden experiment tables after an intentional
# calibration change.
golden:
	$(GO) test ./internal/bench -run Golden -update-golden

fmt:
	gofmt -w .

vet:
	$(GO) vet ./...

clean:
	$(GO) clean ./...
	rm -rf bin
