// Command innetd runs the In-Net controller as an HTTP daemon. It
// loads an operator topology (the paper's Fig. 3 example by default),
// verifies the operator policy against it, and serves the deployment
// API that innetctl (or any HTTP client) talks to:
//
//	POST   /v1/modules      deploy a processing module
//	GET    /v1/modules      list deployments
//	GET    /v1/modules/{id} inspect one deployment
//	DELETE /v1/modules/{id} kill a deployment
//	GET    /v1/classes      list available Click element classes
//	GET    /v1/metrics      Prometheus text metrics (disable with -no-telemetry)
//	GET    /v1/traces       recent admission traces as JSON
//	GET    /v1/pathtrace    sampled per-flow path traces for one module (-simulate)
//	GET    /v1/events       flight-recorder fault/transition events
//
// With -state-dir the controller is crash-safe: every deployment
// lifecycle transition is written ahead to a checksummed journal
// (compacted into snapshots), and a restarted daemon recovers its
// deployment state from the directory before serving.
//
// With -role leader|standby two daemons form a replicated pair: the
// leader streams journal frames to the standby (-peer) over a minimal
// TCP protocol (-repl-listen) and strict transitions wait for the
// standby's acknowledgement. A standby with -failover-after promotes
// itself when the leader goes silent; the deposed leader fences
// read-only and redirects clients to the -advertise URL of its
// successor. See docs/FORMATS.md §10 and DESIGN.md.
//
// Example:
//
//	innetd -listen :8640 -state-dir /var/lib/innetd \
//	  -policy 'reach from internet tcp src port 80 -> HTTPOptimizer -> client'
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	_ "net/http/pprof" // registered on DefaultServeMux, served only on -debug-addr
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"syscall"
	"time"

	"github.com/in-net/innet/internal/api"
	"github.com/in-net/innet/internal/controller"
	_ "github.com/in-net/innet/internal/elements"
	"github.com/in-net/innet/internal/journal"
	"github.com/in-net/innet/internal/replication"
	"github.com/in-net/innet/internal/telemetry"
	"github.com/in-net/innet/internal/topology"
)

func main() {
	os.Exit(run())
}

func run() int {
	var (
		listen   = flag.String("listen", "127.0.0.1:8640", "HTTP listen address")
		topoName = flag.String("topology", "fig3", "built-in operator topology: fig3 | fig1 | grown:<n>")
		topoFile = flag.String("topology-file", "", "operator topology description file (overrides -topology)")
		policy   = flag.String("policy", "", "operator reach-statement policy (must hold on the base network)")
		banUDP   = flag.Bool("ban-connectionless-replies", false,
			"sandbox third-party modules whose reply traffic can be connectionless (amplification mitigation, paper §7)")
		simulate = flag.Bool("simulate", false,
			"attach an in-process platform emulation; deployments become live and POST /v1/inject drives packets through them")
		drain = flag.Duration("drain-timeout", 10*time.Second,
			"how long to let in-flight requests finish on SIGINT/SIGTERM before exiting")
		stateDir = flag.String("state-dir", "",
			"directory for the controller's write-ahead journal and snapshots; on restart the deployment state is recovered from it (empty disables persistence)")
		fsyncPolicy = flag.String("fsync", "always",
			"journal durability: always (fsync each record) | none (leave flushing to the OS)")
		snapshotEvery = flag.Int("snapshot-every", 256,
			"compact the journal into a snapshot every N records (negative disables compaction)")
		noTelemetry = flag.Bool("no-telemetry", false,
			"disable the metrics registry and admission trace ring (GET /v1/metrics and /v1/traces answer 501)")
		traceRing = flag.Int("trace-ring", telemetry.DefaultTraceRing,
			"admission traces retained in memory for GET /v1/traces")
		debugAddr = flag.String("debug-addr", "",
			"serve net/http/pprof on this address (e.g. 127.0.0.1:6060); empty disables the debug listener")
		role = flag.String("role", "single",
			"replication role: single (unreplicated) | leader | standby; leader and standby require -state-dir")
		peers = flag.String("peer", "",
			"comma-separated replication addresses of the other replicas (leader ships journal frames to them)")
		replListen = flag.String("repl-listen", "",
			"replication listen address (default 127.0.0.1:8641 when -role is leader or standby; leaders listen too, so a successor can fence them)")
		advertise = flag.String("advertise", "",
			"client-facing API base URL announced to replication peers for failover redirects (default http://<-listen>)")
		failoverAfter = flag.Duration("failover-after", 0,
			"standby auto-promotion threshold: promote after this much leader silence (0 = manual promotion only)")
		ackTimeout = flag.Duration("ack-timeout", 5*time.Second,
			"how long the leader waits for standby acknowledgement of a strict record before fencing itself")
		electionTimeout = flag.Duration("election-timeout", time.Second,
			"with 3+ replicas: how long one election round waits for votes, and the base for campaign retry backoff")
		admissionWorkers = flag.Int("admission-workers", 0,
			"symexec worker pool width for admission verification (0 = GOMAXPROCS, negative = sequential)")
		elementMemo = flag.Int("element-memo", 0,
			"per-element memo capacity in entries (0 = default, negative = disabled)")
		wholesaleInvalidation = flag.Bool("wholesale-invalidation", false,
			"invalidate the whole admission cache on every topology mutation instead of delta re-verification")
		pipelineWorkers = flag.Int("pipeline-workers", 1,
			"run-to-completion pipeline workers per compiled module dataplane (rounded up to a power of two)")
		traceEvery = flag.Int("trace-every", telemetry.DefaultTraceEvery,
			"per-flow path-trace sampling: trace one flow in every N through each module's dataplane (negative disables; a module's own trace_every overrides)")
		eventRing = flag.Int("event-ring", telemetry.DefaultEventRing,
			"flight-recorder events retained in memory for GET /v1/events and postmortem dumps")
	)
	flag.Parse()

	var topo *topology.Topology
	var err error
	if *topoFile != "" {
		data, rerr := os.ReadFile(*topoFile)
		if rerr != nil {
			log.Printf("innetd: %v", rerr)
			return 1
		}
		topo, err = topology.Parse(string(data))
	} else {
		topo, err = loadTopology(*topoName)
	}
	if err != nil {
		log.Printf("innetd: %v", err)
		return 1
	}
	opts := controller.Options{
		BanConnectionlessReplies: *banUDP,
		AdmissionWorkers:         *admissionWorkers,
		ElementMemo:              *elementMemo,
		WholesaleInvalidation:    *wholesaleInvalidation,
		PipelineWorkers:          *pipelineWorkers,
	}

	replRole, err := parseRole(*role)
	if err != nil {
		log.Printf("innetd: -role: %v", err)
		return 1
	}
	if replRole != controller.RoleSingle && *stateDir == "" {
		log.Printf("innetd: -role %s requires -state-dir (replication ships the write-ahead journal)", *role)
		return 1
	}

	var store *journal.Store
	if *stateDir != "" {
		if err := checkStateDir(*stateDir); err != nil {
			log.Printf("innetd: -state-dir: %v", err)
			return 1
		}
		sync, err := journal.ParseSyncPolicy(*fsyncPolicy)
		if err != nil {
			log.Printf("innetd: -fsync: %v", err)
			return 1
		}
		store, err = journal.Open(*stateDir, journal.Options{Sync: sync, CompactEvery: *snapshotEvery})
		if err != nil {
			log.Printf("innetd: open state dir %s: %v", *stateDir, err)
			return 1
		}
		defer store.Close()
	}

	var ctl *controller.Controller
	var err2 error
	if store != nil {
		var rep *controller.RecoveryReport
		ctl, rep, err2 = controller.Restore(topo, *policy, opts, store.State(), nil, store)
		if err2 == nil {
			log.Printf("innetd: recovered state from %s: %d reattached, %d replaced, %d failed (seq %d, %v)",
				*stateDir, len(rep.Reattached), len(rep.Replaced), len(rep.Failed), store.Seq(), rep.Elapsed)
		}
	} else {
		ctl, err2 = controller.NewWithOptions(topo, *policy, opts)
	}
	if err2 != nil {
		log.Printf("innetd: %v", err2)
		return 1
	}
	// Telemetry is on by default: a nil registry/tracer compiles to
	// no-ops everywhere, so -no-telemetry costs exactly that.
	var reg *telemetry.Registry
	var tracer *telemetry.Tracer
	if !*noTelemetry {
		reg = telemetry.New()
		tracer = telemetry.NewTracer(*traceRing)
		ctl.AttachTelemetry(reg, tracer)
		if store != nil {
			store.RegisterMetrics(reg)
		}
	}
	// The flight recorder and the drop-attribution hub are always on:
	// events are rare and the hub only reads counters at scrape time.
	rec := telemetry.NewRecorder(*eventRing)
	drops := telemetry.NewDrops()
	ctl.SetRecorder(rec)
	ctl.RegisterDrops(drops)
	if store != nil {
		store.SetRecorder(rec)
	}
	// A crash dumps the flight recorder next to the journal it may
	// have wedged, so the postmortem survives the process.
	defer func() {
		if r := recover(); r != nil {
			dumpPostmortem(*stateDir, rec, fmt.Sprintf("panic: %v", r))
			panic(r)
		}
	}()
	var repl *replication.Node
	if replRole != controller.RoleSingle {
		listenRepl := *replListen
		if listenRepl == "" {
			listenRepl = "127.0.0.1:8641"
		}
		adv := *advertise
		if adv == "" {
			adv = "http://" + *listen
		}
		var peerList []string
		for _, p := range strings.Split(*peers, ",") {
			if p = strings.TrimSpace(p); p != "" {
				peerList = append(peerList, p)
			}
		}
		repl, err = replication.NewNode(store, ctl, replication.Config{
			Role:            replRole,
			ListenAddr:      listenRepl,
			Peers:           peerList,
			AdvertiseURL:    adv,
			AckTimeout:      *ackTimeout,
			FailoverAfter:   *failoverAfter,
			ElectionTimeout: *electionTimeout,
			Registry:        reg,
			Rec:             rec,
			OnFence: func(reason string) {
				dumpPostmortem(*stateDir, rec, "fenced: "+reason)
			},
			Logf: log.Printf,
		})
		if err != nil {
			log.Printf("innetd: %v", err)
			return 1
		}
		// The node replaces the bare store as the controller's journal
		// sink: every strict transition now replicates synchronously.
		ctl.AttachJournal(repl)
		repl.RegisterDrops(drops)
		if err := repl.Start(); err != nil {
			log.Printf("innetd: %v", err)
			return 1
		}
		defer repl.Close()
		log.Printf("innetd: replication %s on %s, peers %v, advertising %s",
			*role, repl.Addr(), peerList, adv)
	}

	var sim *api.Simulator
	if *simulate {
		sim = api.NewSimulator(topo.Platforms())
		log.Printf("innetd: simulation mode on; POST /v1/inject to drive packets through deployed modules")
		// Recovered deployments become live on the emulated platforms
		// too (failed ones wait for an explicit retry).
		for _, d := range ctl.Deployments() {
			if d.Status() == controller.StatusFailed {
				continue
			}
			if err := sim.Register(d); err != nil {
				log.Printf("innetd: re-register recovered %s: %v", d.ID, err)
				return 1
			}
		}
		sim.RegisterMetrics(reg)
		sim.RegisterDrops(drops)
		sim.SetRecorder(rec)
		sim.SetTraceEvery(*traceEvery)
	}
	drops.Attach(reg)
	handler := api.NewServerWithSimulator(ctl, sim)
	handler.AttachTelemetry(reg, tracer)
	handler.AttachObservability(drops, rec)
	if repl != nil {
		handler.AttachReplication(repl)
	}
	if store != nil {
		handler.AttachJournal(store)
	}
	log.Printf("innetd: topology %q with platforms %v", *topoName, topo.Platforms())

	if *debugAddr != "" {
		// The pprof handlers live on http.DefaultServeMux; keep them off
		// the API listener so operators can firewall them separately.
		go func() {
			log.Printf("innetd: pprof on http://%s/debug/pprof/", *debugAddr)
			if err := http.ListenAndServe(*debugAddr, nil); err != nil {
				log.Printf("innetd: debug listener: %v", err)
			}
		}()
	}

	srv := &http.Server{
		Addr:              *listen,
		Handler:           handler,
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       30 * time.Second,
		WriteTimeout:      30 * time.Second,
		IdleTimeout:       2 * time.Minute,
	}

	// Serve in the background; drain gracefully on SIGINT/SIGTERM so
	// in-flight deployments finish rather than dying mid-placement.
	errc := make(chan error, 1)
	go func() {
		log.Printf("innetd: listening on http://%s", *listen)
		errc <- srv.ListenAndServe()
	}()
	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, syscall.SIGINT, syscall.SIGTERM)

	select {
	case err := <-errc:
		// The listener died on its own (port taken, fd limit, ...).
		log.Printf("innetd: %v", err)
		return 1
	case sig := <-sigc:
		log.Printf("innetd: caught %v, draining (max %v)", sig, *drain)
		ctx, cancel := context.WithTimeout(context.Background(), *drain)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			log.Printf("innetd: drain incomplete: %v", err)
			return 1
		}
		if err := <-errc; err != nil && !errors.Is(err, http.ErrServerClosed) {
			log.Printf("innetd: %v", err)
			return 1
		}
		log.Printf("innetd: drained, bye")
		return 0
	}
}

// dumpPostmortem writes the flight recorder's full contents (plus the
// triggering cause) to <state-dir>/postmortem.json so the event
// sequence leading into a crash or fencing survives the process. Best
// effort: a daemon without -state-dir has nowhere durable to write.
func dumpPostmortem(dir string, rec *telemetry.Recorder, cause string) {
	if dir == "" || rec == nil {
		return
	}
	data, err := json.MarshalIndent(struct {
		Cause  string            `json:"cause"`
		Time   time.Time         `json:"time"`
		Events []telemetry.Event `json:"events"`
	}{cause, time.Now(), rec.Recent(0)}, "", "  ")
	if err != nil {
		return
	}
	path := filepath.Join(dir, "postmortem.json")
	if err := os.WriteFile(path, data, 0o644); err != nil {
		log.Printf("innetd: postmortem dump: %v", err)
		return
	}
	log.Printf("innetd: wrote postmortem (%s) to %s", cause, path)
}

// checkStateDir verifies the journal directory exists, is a
// directory, and is writable — failing loudly at boot beats
// discovering an unwritable journal on the first deployment.
func checkStateDir(dir string) error {
	fi, err := os.Stat(dir)
	if err != nil {
		return fmt.Errorf("%v (create the directory first)", err)
	}
	if !fi.IsDir() {
		return fmt.Errorf("%s is not a directory", dir)
	}
	probe, err := os.CreateTemp(dir, ".innetd-probe-*")
	if err != nil {
		return fmt.Errorf("directory is not writable: %v", err)
	}
	probe.Close()
	os.Remove(probe.Name())
	return nil
}

func parseRole(s string) (controller.Role, error) {
	switch s {
	case "single", "":
		return controller.RoleSingle, nil
	case "leader":
		return controller.RoleLeader, nil
	case "standby":
		return controller.RoleStandby, nil
	default:
		return controller.RoleSingle, fmt.Errorf("unknown role %q (use single, leader or standby)", s)
	}
}

func loadTopology(name string) (*topology.Topology, error) {
	switch {
	case name == "fig3":
		return topology.PaperFig3()
	case name == "fig1":
		return topology.PaperFig1()
	case len(name) > 6 && name[:6] == "grown:":
		var n int
		if _, err := fmt.Sscanf(name[6:], "%d", &n); err != nil || n < 0 {
			return nil, fmt.Errorf("bad grown size %q", name[6:])
		}
		return topology.Grown(n)
	default:
		fmt.Fprintln(os.Stderr, "unknown topology; use fig3, fig1 or grown:<n>")
		return nil, fmt.Errorf("unknown topology %q", name)
	}
}
