// Command innetctl is the tenant-side CLI for the In-Net controller
// (paper §4.3 "client configuration"): it submits processing-module
// deployment requests, lists deployments and kills modules.
//
//	innetctl -s http://127.0.0.1:8640 deploy \
//	    -tenant alice -name Batcher -trust client \
//	    -config batcher.click -requirements batcher.reach
//	innetctl list
//	innetctl kill pm-1
//	innetctl classes
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"
	"time"

	"github.com/in-net/innet/internal/api"
	"github.com/in-net/innet/internal/controller"
	_ "github.com/in-net/innet/internal/elements"
	"github.com/in-net/innet/internal/packet"
)

func main() {
	server := flag.String("s", envOr("INNET_SERVER", "http://127.0.0.1:8640"), "controller base URL")
	retries := flag.Int("retries", 3, "retry transient errors (5xx gateway, connection refused) this many times")
	retryBase := flag.Duration("retry-base", 100*time.Millisecond,
		"first retry backoff; doubles per attempt with jitter")
	flag.Usage = usage
	flag.Parse()
	args := flag.Args()
	if len(args) == 0 {
		usage()
		os.Exit(2)
	}
	client := api.NewClient(*server)
	client.Retries = *retries
	client.RetryBase = *retryBase
	var err error
	switch args[0] {
	case "deploy":
		err = deploy(client, args[1:])
	case "list":
		err = list(client)
	case "kill":
		err = kill(client, args[1:])
	case "classes":
		err = classes(client)
	case "query":
		err = query(client, args[1:])
	case "inject":
		err = inject(client, args[1:])
	case "health":
		err = health(client)
	case "stats":
		err = stats(client, args[1:])
	case "trace":
		err = trace(client, args[1:])
	case "pathtrace":
		err = pathtrace(client, args[1:])
	case "events":
		err = events(client, args[1:])
	default:
		fmt.Fprintf(os.Stderr, "innetctl: unknown command %q\n", args[0])
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "innetctl: %v\n", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintf(os.Stderr, `usage: innetctl [-s URL] [-retries N] [-retry-base D] <command> [args]

commands:
  deploy -f REQUEST_FILE [-tenant T]
  deploy -tenant T -name N -trust {third-party|client|operator}
         [-config FILE | -stock NAME] [-requirements FILE]
         [-whitelist ip,ip,...] [-transparent]
  list
  kill <id>
  classes
  query '<reach statement>'
  inject -dst IP [-src IP] [-proto udp|tcp|icmp] [-sport N] [-dport N]
         [-payload S] [-count N]      (innetd -simulate mode)
  health
  stats [-raw]                        (operator metrics; -raw dumps the
                                       full Prometheus exposition)
  trace <module-id-or-name> | trace -n K
                                      (admission traces, stage by stage)
  pathtrace <module-id-or-name> [-n K]
                                      (sampled per-flow dataplane path
                                       traces, hop by hop)
  events [-n K]                       (flight-recorder fault events,
                                       newest first)
`)
}

func envOr(key, def string) string {
	if v := os.Getenv(key); v != "" {
		return v
	}
	return def
}

func deploy(c *api.Client, args []string) error {
	fs := flag.NewFlagSet("deploy", flag.ExitOnError)
	var (
		file        = fs.String("f", "", "request file (module + config + requirements in one document)")
		tenant      = fs.String("tenant", "", "tenant name")
		name        = fs.String("name", "", "module name")
		trust       = fs.String("trust", "third-party", "trust class")
		configFile  = fs.String("config", "", "Click configuration file")
		stock       = fs.String("stock", "", "stock module name")
		reqFile     = fs.String("requirements", "", "requirements file (reach statements)")
		whitelist   = fs.String("whitelist", "", "comma-separated authorized destinations")
		transparent = fs.Bool("transparent", false, "request transparent interposition (operator only)")
		traceEvery  = fs.Int("trace-every", 0,
			"per-flow path-trace sampling for this module: trace one flow in every N (0 = platform default, negative = off)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *file != "" {
		data, err := os.ReadFile(*file)
		if err != nil {
			return err
		}
		parsed, err := controller.ParseRequestFile(string(data))
		if err != nil {
			return err
		}
		if *tenant != "" {
			parsed.Tenant = *tenant
		}
		dep, err := c.Deploy(api.DeployRequest{
			Tenant:       parsed.Tenant,
			ModuleName:   parsed.ModuleName,
			Config:       parsed.Config,
			Stock:        parsed.Stock,
			Requirements: parsed.Requirements,
			Trust:        api.TrustName(parsed.Trust),
			Whitelist:    parsed.Whitelist,
			Transparent:  parsed.Transparent,
			TraceEvery:   *traceEvery,
		})
		if err != nil {
			return err
		}
		fmt.Printf("deployed %s on %s at %s (sandboxed=%v, compile %.2f ms, check %.2f ms)\n",
			dep.ID, dep.Platform, dep.Addr, dep.Sandboxed, dep.CompileMS, dep.CheckMS)
		return nil
	}
	req := api.DeployRequest{
		Tenant:      *tenant,
		ModuleName:  *name,
		Stock:       *stock,
		Trust:       *trust,
		Transparent: *transparent,
		TraceEvery:  *traceEvery,
	}
	if *configFile != "" {
		data, err := os.ReadFile(*configFile)
		if err != nil {
			return err
		}
		req.Config = string(data)
	}
	if *reqFile != "" {
		data, err := os.ReadFile(*reqFile)
		if err != nil {
			return err
		}
		req.Requirements = string(data)
	}
	if *whitelist != "" {
		for _, w := range strings.Split(*whitelist, ",") {
			if w = strings.TrimSpace(w); w != "" {
				req.Whitelist = append(req.Whitelist, w)
			}
		}
	}
	dep, err := c.Deploy(req)
	if err != nil {
		return err
	}
	fmt.Printf("deployed %s on %s at %s (sandboxed=%v, compile %.2f ms, check %.2f ms)\n",
		dep.ID, dep.Platform, dep.Addr, dep.Sandboxed, dep.CompileMS, dep.CheckMS)
	return nil
}

func list(c *api.Client) error {
	mods, err := c.List()
	if err != nil {
		return err
	}
	if len(mods) == 0 {
		fmt.Println("no deployments")
		return nil
	}
	fmt.Printf("%-8s %-12s %-12s %-12s %-16s %-10s %-10s %-9s %s\n", "ID", "TENANT", "MODULE", "PLATFORM", "ADDR", "STATUS", "DATAPLANE", "SANDBOXED", "FALLBACK-REASON")
	for _, m := range mods {
		fmt.Printf("%-8s %-12s %-12s %-12s %-16s %-10s %-10s %-9v %s\n",
			m.ID, m.Tenant, m.ModuleName, m.Platform, m.Addr, m.Status, m.Dataplane, m.Sandboxed, m.FallbackReason)
	}
	return nil
}

func health(c *api.Client) error {
	h, err := c.Health()
	if err != nil {
		return err
	}
	fmt.Printf("status: %s\n", h.Status)
	if r := h.Replication; r != nil {
		line := fmt.Sprintf("replication: %s term=%d seq=%d lag=%d peers=%d",
			r.Role, r.Term, r.Seq, r.LagRecords, r.Peers)
		if r.ClusterSize > 0 {
			line += fmt.Sprintf(" quorum=%d/%d", r.Majority, r.ClusterSize)
		}
		if r.Fenced {
			line += " FENCED"
		}
		if r.LeaderURL != "" {
			line += " leader=" + r.LeaderURL
		}
		fmt.Println(line)
		for _, p := range r.PeerDetail {
			state := "connected"
			if !p.Connected {
				state = "DISCONNECTED"
			} else if p.TermConnected != r.Term {
				state = fmt.Sprintf("connected (stale term %d)", p.TermConnected)
			}
			fmt.Printf("peer %s: acked=%d lag=%d %s\n", p.Addr, p.AckedSeq, p.Lag, state)
		}
	}
	if p := h.Pipeline; p != nil {
		fmt.Printf("pipeline: workers=%d compiled=%d fallback=%d\n",
			p.Workers, p.Compiled, p.Fallback)
		reasons := make([]string, 0, len(p.Reasons))
		for r := range p.Reasons {
			reasons = append(reasons, r)
		}
		sort.Strings(reasons)
		for _, r := range reasons {
			fmt.Printf("pipeline fallback (%d): %s\n", p.Reasons[r], r)
		}
		mods := make([]string, 0, len(p.Modules))
		for m := range p.Modules {
			mods = append(mods, m)
		}
		sort.Strings(mods)
		for _, m := range mods {
			if reason := p.Modules[m]; reason != "" {
				fmt.Printf("module %s: graph-walk (%s)\n", m, reason)
			} else {
				fmt.Printf("module %s: compiled\n", m)
			}
		}
	}
	printDropRollup(h.DropReasons)
	if cs := h.Cache; cs != nil {
		fmt.Printf("admission cache: hits=%d misses=%d entries=%d evictions=%d invalidations=%d\n",
			cs.Hits, cs.Misses, cs.Entries, cs.Evictions, cs.Invalidations)
		fmt.Printf("element memo: hits=%d misses=%d unsupported=%d entries=%d evictions=%d\n",
			cs.MemoHits, cs.MemoMisses, cs.MemoUnsupported, cs.MemoEntries, cs.MemoEvictions)
	}
	for _, e := range h.Errors {
		fmt.Printf("error: %s\n", e)
	}
	names := make([]string, 0, len(h.Platforms))
	for name := range h.Platforms {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		state := "up"
		if !h.Platforms[name] {
			state = "DOWN"
		}
		fmt.Printf("platform %s: %s\n", name, state)
	}
	states := make([]string, 0, len(h.Deployments))
	for st := range h.Deployments {
		states = append(states, st)
	}
	sort.Strings(states)
	for _, st := range states {
		fmt.Printf("deployments %s: %d\n", st, h.Deployments[st])
	}
	return nil
}

// stats prints the controller's operator metrics. By default the
// Prometheus exposition is condensed to one line per series (headers
// and histogram buckets dropped); -raw dumps it verbatim for piping
// into other tooling.
func stats(c *api.Client, args []string) error {
	fs := flag.NewFlagSet("stats", flag.ExitOnError)
	raw := fs.Bool("raw", false, "print the full Prometheus text exposition")
	if err := fs.Parse(args); err != nil {
		return err
	}
	text, err := c.Metrics()
	if err != nil {
		return err
	}
	if *raw {
		fmt.Print(text)
		return nil
	}
	// The unified drop rollup leads: it is the one table an operator
	// asks for first when packets go missing.
	if h, herr := c.Health(); herr == nil {
		printDropRollup(h.DropReasons)
	}
	for _, line := range strings.Split(text, "\n") {
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		if strings.Contains(line, "_bucket{") {
			continue // histogram summary lives in _sum/_count
		}
		fmt.Println(line)
	}
	return nil
}

// trace prints admission traces stage by stage. With an argument it
// shows the traces whose module name or deployment ID matches; with
// -n K it shows the K most recent.
func trace(c *api.Client, args []string) error {
	fs := flag.NewFlagSet("trace", flag.ExitOnError)
	n := fs.Int("n", 0, "show the N most recent traces instead of filtering by module")
	if err := fs.Parse(args); err != nil {
		return err
	}
	want := ""
	if fs.NArg() > 0 {
		want = fs.Arg(0)
	}
	if want == "" && *n <= 0 {
		return fmt.Errorf("trace wants a module id/name, or -n K for the K most recent")
	}
	fetch := 0 // 0 = whole ring; we filter client-side
	if want == "" {
		fetch = *n
	}
	traces, err := c.Traces(fetch)
	if err != nil {
		return err
	}
	shown := 0
	for _, tr := range traces {
		if want != "" && tr.ID != want && tr.Ref != want {
			continue
		}
		shown++
		ref := ""
		if tr.Ref != "" {
			ref = " -> " + tr.Ref
		}
		fmt.Printf("%s %s%s: %s in %v (at %s)\n",
			tr.Kind, tr.ID, ref, tr.Verdict, tr.Total, tr.Start.Format(time.RFC3339))
		for _, st := range tr.Stages {
			detail := ""
			if st.Detail != "" {
				detail = "  (" + st.Detail + ")"
			}
			fmt.Printf("  %-18s %12v%s\n", st.Name, st.Duration, detail)
		}
	}
	if shown == 0 {
		if want != "" {
			return fmt.Errorf("no trace for %q in the server's ring (deploys before the last %d admissions have aged out)", want, len(traces))
		}
		fmt.Println("no traces recorded yet")
	}
	return nil
}

// printDropRollup renders the unified site → reason → count drop
// attribution (zero counts skipped; nothing printed when the daemon
// has no hub wired).
func printDropRollup(rollup map[string]map[string]uint64) {
	sites := make([]string, 0, len(rollup))
	for site := range rollup {
		sites = append(sites, site)
	}
	sort.Strings(sites)
	for _, site := range sites {
		reasons := make([]string, 0, len(rollup[site]))
		for r := range rollup[site] {
			reasons = append(reasons, r)
		}
		sort.Strings(reasons)
		for _, r := range reasons {
			if n := rollup[site][r]; n > 0 {
				fmt.Printf("drops %s/%s: %d\n", site, r, n)
			}
		}
	}
}

// pathtrace prints sampled per-flow dataplane path traces for one
// module, hop by hop.
func pathtrace(c *api.Client, args []string) error {
	fs := flag.NewFlagSet("pathtrace", flag.ExitOnError)
	n := fs.Int("n", -1, "how many traces to fetch (0 = all retained)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("pathtrace wants exactly one module id or name")
	}
	res, err := c.PathTraces(fs.Arg(0), *n)
	if err != nil {
		return err
	}
	if len(res.Traces) == 0 {
		fmt.Printf("no path traces for %s at %s yet (is the module's sampling rate on? see -trace-every / trace_every)\n",
			res.Module, res.Addr)
		return nil
	}
	for _, tr := range res.Traces {
		fmt.Printf("trace %d flow=%x dataplane=%s (at %s)\n",
			tr.Seq, tr.FlowHash, tr.Dataplane, tr.Time.Format(time.RFC3339))
		for _, h := range tr.Hops {
			elem := h.Elem
			if elem == "" {
				elem = "(egress)"
			}
			fused := ""
			if h.FusedRun >= 0 {
				fused = fmt.Sprintf("  [fused run %d]", h.FusedRun)
			}
			fmt.Printf("  %-18s in=%-3s out=%-3s %s%s\n",
				elem, port(h.InPort), port(h.OutPort), h.Verdict, fused)
		}
	}
	return nil
}

// port renders a port number, with -1 (not applicable) as "-".
func port(p int) string {
	if p < 0 {
		return "-"
	}
	return fmt.Sprintf("%d", p)
}

// events prints the flight recorder, newest first.
func events(c *api.Client, args []string) error {
	fs := flag.NewFlagSet("events", flag.ExitOnError)
	n := fs.Int("n", -1, "how many events to fetch (0 = the whole ring)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	evs, err := c.Events(*n)
	if err != nil {
		return err
	}
	if len(evs) == 0 {
		fmt.Println("no events recorded")
		return nil
	}
	for _, e := range evs {
		line := fmt.Sprintf("%6d  %s  %-18s %s", e.Seq, e.Time.Format(time.RFC3339), e.Type, e.Source)
		if e.Ref != "" {
			line += " " + e.Ref
		}
		if e.Detail != "" {
			line += "  (" + e.Detail + ")"
		}
		fmt.Println(line)
	}
	return nil
}

func kill(c *api.Client, args []string) error {
	if len(args) != 1 {
		return fmt.Errorf("kill wants exactly one module id")
	}
	if err := c.Kill(args[0]); err != nil {
		return err
	}
	fmt.Printf("killed %s\n", args[0])
	return nil
}

func query(c *api.Client, args []string) error {
	if len(args) != 1 {
		return fmt.Errorf("query wants one reach statement argument")
	}
	res, err := c.Query(args[0])
	if err != nil {
		return err
	}
	if res.Satisfied {
		fmt.Printf("satisfied (compile %.2f ms, check %.2f ms)\n", res.CompileMS, res.CheckMS)
		return nil
	}
	fmt.Printf("NOT satisfied: %s\n", res.Reason)
	return nil
}

func inject(c *api.Client, args []string) error {
	fs := flag.NewFlagSet("inject", flag.ExitOnError)
	var (
		dst     = fs.String("dst", "", "module address (required)")
		src     = fs.String("src", "", "source address")
		proto   = fs.String("proto", "udp", "protocol")
		sport   = fs.Uint("sport", 4000, "source port")
		dport   = fs.Uint("dport", 1500, "destination port")
		payload = fs.String("payload", "hello", "payload text")
		count   = fs.Int("count", 1, "packets to send")
		pcapOut = fs.String("pcap", "", "also write the emitted packets to a pcap file")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	res, err := c.Inject(api.InjectRequest{
		Dst: *dst, Src: *src, Proto: *proto,
		SrcPort: uint16(*sport), DstPort: uint16(*dport),
		Payload: *payload, Count: *count,
	})
	if err != nil {
		return err
	}
	fmt.Printf("sent %d packet(s) via %s (vm booted: %v); module emitted %d:\n",
		res.Sent, res.Platform, res.BootedVM, len(res.Emitted))
	for _, e := range res.Emitted {
		fmt.Printf("  %s %s:%d -> %s:%d payload=%q latency=%.1fms\n",
			e.Proto, e.Src, e.SrcPort, e.Dst, e.DstPort, e.Payload, e.LatencyMS)
	}
	if *pcapOut != "" {
		if err := writePcap(*pcapOut, res.Emitted); err != nil {
			return err
		}
		fmt.Printf("wrote %d packet(s) to %s\n", len(res.Emitted), *pcapOut)
	}
	return nil
}

// writePcap renders emitted packets as a LINKTYPE_RAW capture.
func writePcap(path string, emitted []api.EmittedPacket) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	w, err := packet.NewPcapWriter(f, 0)
	if err != nil {
		return err
	}
	for _, e := range emitted {
		src, err := packet.ParseIP(e.Src)
		if err != nil {
			return err
		}
		dst, err := packet.ParseIP(e.Dst)
		if err != nil {
			return err
		}
		var proto packet.Proto
		switch e.Proto {
		case "tcp":
			proto = packet.ProtoTCP
		case "icmp":
			proto = packet.ProtoICMP
		default:
			proto = packet.ProtoUDP
		}
		pk := &packet.Packet{
			Protocol: proto,
			SrcIP:    src, DstIP: dst,
			SrcPort: e.SrcPort, DstPort: e.DstPort,
			TTL:       64,
			Payload:   []byte(e.Payload),
			Timestamp: int64(e.LatencyMS * 1e6),
		}
		if err := w.WritePacket(pk); err != nil {
			return err
		}
	}
	return nil
}

func classes(c *api.Client) error {
	cs, err := c.Classes()
	if err != nil {
		return err
	}
	for _, cl := range cs {
		fmt.Println(cl)
	}
	return nil
}
