// Command innet-bench regenerates the paper's evaluation tables and
// figures (§6, §7.1-7.2, §8) on this repository's substrates and
// prints them as aligned text tables. See EXPERIMENTS.md for the
// paper-vs-measured comparison.
//
//	innet-bench              # full parameter ranges
//	innet-bench -quick       # shrunk sweeps (seconds, not minutes)
//	innet-bench -only fig10  # a single experiment
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"github.com/in-net/innet/internal/bench"
)

func main() {
	var (
		quick   = flag.Bool("quick", false, "shrink the heavyweight sweeps")
		only    = flag.String("only", "", "run selected experiments (comma-separated): fig5..fig16, table1, mawi, controller, https, fastpath, telemetry, replication, admission, pipeline")
		list    = flag.Bool("list", false, "list experiment ids and exit")
		batch   = flag.Int("batch", 0, "dataplane batch size for fastpath and pipeline (0 = default)")
		pipe    = flag.Bool("pipeline", false, "run just the compiled-pipeline experiment (same as -only pipeline)")
		jsonOut = flag.String("json", "", "also write the fastpath results to this file (BENCH_pr3.json)")
		telOut  = flag.String("telemetry-json", "", "also write the telemetry overhead results to this file")
		replOut = flag.String("replication-json", "", "also write the failover results to this file (BENCH_replication.json)")
		admOut  = flag.String("admission-json", "", "also write the admission-scaling results to this file (BENCH_admission.json)")
		pipeOut = flag.String("pipeline-json", "", "also write the pipeline results to this file (BENCH_pipeline.json)")
		histOut = flag.String("history", "", "append a per-commit entry with this run's headline metrics to this file (BENCH_HISTORY.jsonl)")
		commit  = flag.String("commit", "unknown", "commit id recorded in the -history entry")
		env     = flag.String("env", "local", "environment label recorded in the -history entry (gate compares same-env entries only)")
		gate    = flag.Bool("gate", false, "after any -history append, fail (exit 3) if a gated metric regressed vs the previous same-env entry")
		gateTol = flag.Float64("gate-threshold", 0.15, "relative drop that trips -gate")
	)
	flag.Parse()
	if *pipe {
		*only = "pipeline"
	}

	var fastpath *bench.FastPathResult
	var tel *bench.TelemetryResult
	var repl *bench.ReplicationResult
	var adm *bench.AdmissionScalingResult
	var pipeRes *bench.PipelineResult
	batchCfg := bench.BatchConfig{Size: *batch}

	runners := map[string]func() *bench.Table{
		"fig5":        func() *bench.Table { return bench.Fig5(*quick) },
		"fig6":        func() *bench.Table { return bench.Fig6(*quick) },
		"fig7":        bench.Fig7,
		"fig8":        bench.Fig8,
		"fig9":        bench.Fig9,
		"fig10":       func() *bench.Table { return bench.Fig10(*quick) },
		"table1":      bench.Table1,
		"fig11":       func() *bench.Table { return bench.Fig11(*quick) },
		"fig12":       bench.Fig12,
		"fig13":       bench.Fig13,
		"fig14":       func() *bench.Table { return bench.Fig14(*quick) },
		"fig15":       func() *bench.Table { return bench.Fig15(*quick) },
		"fig16":       bench.Fig16,
		"mawi":        bench.MAWI,
		"controller":  bench.ControllerLatency,
		"https":       bench.HTTPvsHTTPS,
		"mawi-replay": func() *bench.Table { return bench.MAWIReplay(*quick) },
		"ablation-a":  bench.AblationConsolidation,
		"ablation-b":  bench.AblationSuspendResume,
		"ablation-c":  func() *bench.Table { return bench.AblationSandbox(*quick) },
		"fastpath": func() *bench.Table {
			fastpath = bench.FastPathMeasure(*quick, *batch)
			return bench.FastPathTable(fastpath)
		},
		"telemetry": func() *bench.Table {
			tel = bench.TelemetryMeasure(*quick)
			return bench.TelemetryTable(tel)
		},
		"replication": func() *bench.Table {
			repl = bench.ReplicationMeasure(*quick)
			return bench.ReplicationTable(repl)
		},
		"admission": func() *bench.Table {
			adm = bench.AdmissionScalingMeasure(*quick)
			return bench.AdmissionScalingTable(adm)
		},
		"pipeline": func() *bench.Table {
			pipeRes = bench.PipelineMeasure(*quick, batchCfg)
			return bench.PipelineTable(pipeRes)
		},
	}
	order := []string{
		"fig5", "fig6", "fig7", "fig8", "fig9", "fig10", "table1",
		"fig11", "fig12", "fig13", "fig14", "fig15", "fig16",
		"mawi", "mawi-replay", "controller", "https",
		"ablation-a", "ablation-b", "ablation-c", "fastpath", "telemetry",
		"replication", "admission", "pipeline",
	}

	writeFile := func(path string, data []byte, err error) {
		if err == nil {
			err = os.WriteFile(path, append(data, '\n'), 0o644)
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "innet-bench: %v\n", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "wrote %s\n", path)
	}
	writeJSON := func() {
		if *jsonOut != "" {
			if fastpath == nil {
				fastpath = bench.FastPathMeasure(*quick, *batch)
			}
			data, err := fastpath.JSON()
			writeFile(*jsonOut, data, err)
		}
		if *telOut != "" {
			if tel == nil {
				tel = bench.TelemetryMeasure(*quick)
			}
			data, err := tel.JSON()
			writeFile(*telOut, data, err)
		}
		if *replOut != "" {
			if repl == nil {
				repl = bench.ReplicationMeasure(*quick)
			}
			data, err := repl.JSON()
			writeFile(*replOut, data, err)
		}
		if *admOut != "" {
			if adm == nil {
				adm = bench.AdmissionScalingMeasure(*quick)
			}
			data, err := adm.JSON()
			writeFile(*admOut, data, err)
		}
		if *pipeOut != "" {
			if pipeRes == nil {
				pipeRes = bench.PipelineMeasure(*quick, batchCfg)
			}
			data, err := pipeRes.JSON()
			writeFile(*pipeOut, data, err)
		}
		if *histOut != "" {
			e := bench.NewHistoryEntry(*commit, *env)
			if fastpath != nil {
				e.RecordFastPath(fastpath)
			}
			if pipeRes != nil {
				e.RecordPipeline(pipeRes)
			}
			if len(e.Metrics) == 0 {
				fmt.Fprintln(os.Stderr, "innet-bench: -history set but no gated suite ran (need fastpath and/or pipeline)")
				os.Exit(2)
			}
			if err := bench.AppendHistory(*histOut, e); err != nil {
				fmt.Fprintf(os.Stderr, "innet-bench: %v\n", err)
				os.Exit(1)
			}
			fmt.Fprintf(os.Stderr, "appended %s (commit=%s env=%s, %d metrics)\n", *histOut, *commit, *env, len(e.Metrics))
		}
		if *gate {
			if *histOut == "" {
				fmt.Fprintln(os.Stderr, "innet-bench: -gate requires -history FILE")
				os.Exit(2)
			}
			if err := bench.GateFile(*histOut, *gateTol); err != nil {
				fmt.Fprintf(os.Stderr, "innet-bench: %v\n", err)
				os.Exit(3)
			}
			fmt.Fprintln(os.Stderr, "bench gate: ok")
		}
	}

	if *list {
		fmt.Println(strings.Join(order, "\n"))
		return
	}
	// Standalone gate: no experiments requested, just check the
	// history file (scripts/bench_gate.sh path).
	if *gate && *only == "" && *jsonOut == "" && *telOut == "" &&
		*replOut == "" && *admOut == "" && *pipeOut == "" {
		if *histOut == "" {
			fmt.Fprintln(os.Stderr, "innet-bench: -gate requires -history FILE")
			os.Exit(2)
		}
		if err := bench.GateFile(*histOut, *gateTol); err != nil {
			fmt.Fprintf(os.Stderr, "innet-bench: %v\n", err)
			os.Exit(3)
		}
		fmt.Fprintln(os.Stderr, "bench gate: ok")
		return
	}
	if *only != "" {
		for _, id := range strings.Split(strings.ToLower(*only), ",") {
			id = strings.TrimSpace(id)
			if id == "" {
				continue
			}
			r, ok := runners[id]
			if !ok {
				fmt.Fprintf(os.Stderr, "innet-bench: unknown experiment %q (try -list)\n", id)
				os.Exit(2)
			}
			fmt.Println(r().String())
		}
		writeJSON()
		return
	}
	for _, id := range order {
		fmt.Println(runners[id]().String())
	}
	writeJSON()
}
