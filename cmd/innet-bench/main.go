// Command innet-bench regenerates the paper's evaluation tables and
// figures (§6, §7.1-7.2, §8) on this repository's substrates and
// prints them as aligned text tables. See EXPERIMENTS.md for the
// paper-vs-measured comparison.
//
//	innet-bench              # full parameter ranges
//	innet-bench -quick       # shrunk sweeps (seconds, not minutes)
//	innet-bench -only fig10  # a single experiment
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"github.com/in-net/innet/internal/bench"
)

func main() {
	var (
		quick   = flag.Bool("quick", false, "shrink the heavyweight sweeps")
		only    = flag.String("only", "", "run one experiment: fig5..fig16, table1, mawi, controller, https, fastpath, telemetry, replication, admission")
		list    = flag.Bool("list", false, "list experiment ids and exit")
		batch   = flag.Int("batch", 0, "dataplane batch size for fastpath (0 = default)")
		jsonOut = flag.String("json", "", "also write the fastpath results to this file (BENCH_pr3.json)")
		telOut  = flag.String("telemetry-json", "", "also write the telemetry overhead results to this file")
		replOut = flag.String("replication-json", "", "also write the failover results to this file (BENCH_replication.json)")
		admOut  = flag.String("admission-json", "", "also write the admission-scaling results to this file (BENCH_admission.json)")
	)
	flag.Parse()

	var fastpath *bench.FastPathResult
	var tel *bench.TelemetryResult
	var repl *bench.ReplicationResult
	var adm *bench.AdmissionScalingResult

	runners := map[string]func() *bench.Table{
		"fig5":        func() *bench.Table { return bench.Fig5(*quick) },
		"fig6":        func() *bench.Table { return bench.Fig6(*quick) },
		"fig7":        bench.Fig7,
		"fig8":        bench.Fig8,
		"fig9":        bench.Fig9,
		"fig10":       func() *bench.Table { return bench.Fig10(*quick) },
		"table1":      bench.Table1,
		"fig11":       func() *bench.Table { return bench.Fig11(*quick) },
		"fig12":       bench.Fig12,
		"fig13":       bench.Fig13,
		"fig14":       func() *bench.Table { return bench.Fig14(*quick) },
		"fig15":       func() *bench.Table { return bench.Fig15(*quick) },
		"fig16":       bench.Fig16,
		"mawi":        bench.MAWI,
		"controller":  bench.ControllerLatency,
		"https":       bench.HTTPvsHTTPS,
		"mawi-replay": func() *bench.Table { return bench.MAWIReplay(*quick) },
		"ablation-a":  bench.AblationConsolidation,
		"ablation-b":  bench.AblationSuspendResume,
		"ablation-c":  func() *bench.Table { return bench.AblationSandbox(*quick) },
		"fastpath": func() *bench.Table {
			fastpath = bench.FastPathMeasure(*quick, *batch)
			return bench.FastPathTable(fastpath)
		},
		"telemetry": func() *bench.Table {
			tel = bench.TelemetryMeasure(*quick)
			return bench.TelemetryTable(tel)
		},
		"replication": func() *bench.Table {
			repl = bench.ReplicationMeasure(*quick)
			return bench.ReplicationTable(repl)
		},
		"admission": func() *bench.Table {
			adm = bench.AdmissionScalingMeasure(*quick)
			return bench.AdmissionScalingTable(adm)
		},
	}
	order := []string{
		"fig5", "fig6", "fig7", "fig8", "fig9", "fig10", "table1",
		"fig11", "fig12", "fig13", "fig14", "fig15", "fig16",
		"mawi", "mawi-replay", "controller", "https",
		"ablation-a", "ablation-b", "ablation-c", "fastpath", "telemetry",
		"replication", "admission",
	}

	writeFile := func(path string, data []byte, err error) {
		if err == nil {
			err = os.WriteFile(path, append(data, '\n'), 0o644)
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "innet-bench: %v\n", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "wrote %s\n", path)
	}
	writeJSON := func() {
		if *jsonOut != "" {
			if fastpath == nil {
				fastpath = bench.FastPathMeasure(*quick, *batch)
			}
			data, err := fastpath.JSON()
			writeFile(*jsonOut, data, err)
		}
		if *telOut != "" {
			if tel == nil {
				tel = bench.TelemetryMeasure(*quick)
			}
			data, err := tel.JSON()
			writeFile(*telOut, data, err)
		}
		if *replOut != "" {
			if repl == nil {
				repl = bench.ReplicationMeasure(*quick)
			}
			data, err := repl.JSON()
			writeFile(*replOut, data, err)
		}
		if *admOut != "" {
			if adm == nil {
				adm = bench.AdmissionScalingMeasure(*quick)
			}
			data, err := adm.JSON()
			writeFile(*admOut, data, err)
		}
	}

	if *list {
		fmt.Println(strings.Join(order, "\n"))
		return
	}
	if *only != "" {
		r, ok := runners[strings.ToLower(*only)]
		if !ok {
			fmt.Fprintf(os.Stderr, "innet-bench: unknown experiment %q (try -list)\n", *only)
			os.Exit(2)
		}
		fmt.Println(r().String())
		writeJSON()
		return
	}
	for _, id := range order {
		fmt.Println(runners[id]().String())
	}
	writeJSON()
}
