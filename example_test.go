package innet_test

import (
	"fmt"
	"log"

	innet "github.com/in-net/innet"
)

// Deploy the paper's Fig. 4 push-notification batcher on the Fig. 3
// operator network: static analysis picks Platform 3, the only
// platform reachable from the Internet.
func ExampleNewController() {
	topo, err := innet.Fig3Topology()
	if err != nil {
		log.Fatal(err)
	}
	ctl, err := innet.NewController(topo,
		"reach from internet tcp src port 80 -> HTTPOptimizer -> client")
	if err != nil {
		log.Fatal(err)
	}
	dep, err := ctl.Deploy(innet.Request{
		Tenant:     "alice",
		ModuleName: "Batcher",
		Config: `
FromNetfront() ->
IPFilter(allow udp port 1500) ->
IPRewriter(pattern - - 10.1.15.133 - 0 0)
-> TimedUnqueue(120,100)
-> dst::ToNetfront()
`,
		Requirements: `
reach from internet udp
-> Batcher:dst:0 dst 10.1.15.133
-> client dst port 1500
const proto && dst port && payload
`,
		Trust: innet.TrustClient,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(dep.Platform, dep.Sandboxed)
	// Output: Platform3 false
}

// Probe the network before picking a tunnel (the §8 protocol-tunneling
// use case): the Fig. 1 operator firewall only lets UDP out.
func ExampleController_Query() {
	topo, err := innet.Fig1Topology()
	if err != nil {
		log.Fatal(err)
	}
	ctl, err := innet.NewController(topo, "")
	if err != nil {
		log.Fatal(err)
	}
	udp, err := ctl.Query("reach from client udp -> internet const payload")
	if err != nil {
		log.Fatal(err)
	}
	tcp, err := ctl.Query("reach from client tcp -> internet")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("udp:", udp.Satisfied, "tcp:", tcp.Satisfied)
	// Output: udp: true tcp: false
}

// Provably unsafe modules never run: a third-party module aiming
// traffic at a non-whitelisted constant is rejected outright.
func ExampleController_Deploy_rejected() {
	topo, err := innet.Fig3Topology()
	if err != nil {
		log.Fatal(err)
	}
	ctl, err := innet.NewController(topo, "")
	if err != nil {
		log.Fatal(err)
	}
	_, err = ctl.Deploy(innet.Request{
		Tenant:     "mallory",
		ModuleName: "cannon",
		Trust:      innet.TrustThirdParty,
		Config: `
in :: FromNetfront();
atk :: SetIPDst(203.0.113.99);
out :: ToNetfront();
in -> atk -> out;
`,
	})
	fmt.Println(err)
	// Output: controller: request rejected: security: all egress traffic is unauthorized
}
