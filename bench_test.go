// Benchmarks regenerating every table and figure of the paper's
// evaluation. Each benchmark runs one experiment harness end to end;
// `go test -bench=. -benchmem` therefore reproduces the full
// evaluation. The per-figure shape assertions live in
// internal/bench's tests; these benchmarks measure how long each
// reproduction takes on this machine and keep allocations visible.
package innet

import (
	"testing"

	"github.com/in-net/innet/internal/bench"
)

func benchTable(b *testing.B, run func() *bench.Table) {
	b.Helper()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		t := run()
		if len(t.Rows) == 0 {
			b.Fatalf("%s produced no rows", t.ID)
		}
	}
}

// BenchmarkFig05 reproduces Figure 5: ping RTTs of the first packets
// of 100 concurrent flows through on-the-fly-booted ClickOS VMs.
func BenchmarkFig05(b *testing.B) {
	benchTable(b, func() *bench.Table { return bench.Fig5(true) })
}

// BenchmarkFig06 reproduces Figure 6: 100 concurrent capped HTTP
// transfers through on-the-fly VMs.
func BenchmarkFig06(b *testing.B) {
	benchTable(b, func() *bench.Table { return bench.Fig6(true) })
}

// BenchmarkFig07 reproduces Figure 7: suspend/resume latency vs
// resident VM count.
func BenchmarkFig07(b *testing.B) { benchTable(b, bench.Fig7) }

// BenchmarkFig08 reproduces Figure 8: consolidated-VM throughput vs
// configurations per VM.
func BenchmarkFig08(b *testing.B) { benchTable(b, bench.Fig8) }

// BenchmarkFig09 reproduces Figure 9: 1,000 clients across VMs of
// 50/100/200 configurations.
func BenchmarkFig09(b *testing.B) { benchTable(b, bench.Fig9) }

// BenchmarkFig10 reproduces Figure 10: static-analysis time vs
// operator network size (real measurement).
func BenchmarkFig10(b *testing.B) {
	benchTable(b, func() *bench.Table { return bench.Fig10(true) })
}

// BenchmarkTable1 reproduces Table 1: safety verdicts for twelve
// middlebox types and three requester classes.
func BenchmarkTable1(b *testing.B) { benchTable(b, bench.Table1) }

// BenchmarkFig11 reproduces Figure 11: the per-packet cost of
// ChangeEnforcer sandboxing vs packet size (real measurement).
func BenchmarkFig11(b *testing.B) {
	benchTable(b, func() *bench.Table { return bench.Fig11(true) })
}

// BenchmarkFig12 reproduces Figure 12: per-middlebox-type aggregate
// throughput vs VM count.
func BenchmarkFig12(b *testing.B) { benchTable(b, bench.Fig12) }

// BenchmarkFig13 reproduces Figure 13: handset energy vs notification
// batching interval.
func BenchmarkFig13(b *testing.B) { benchTable(b, bench.Fig13) }

// BenchmarkFig14 reproduces Figure 14: SCTP over UDP vs TCP tunnels
// under loss.
func BenchmarkFig14(b *testing.B) {
	benchTable(b, func() *bench.Table { return bench.Fig14(true) })
}

// BenchmarkFig15 reproduces Figure 15: Slowloris attack and In-Net
// reverse-proxy defense.
func BenchmarkFig15(b *testing.B) {
	benchTable(b, func() *bench.Table { return bench.Fig15(true) })
}

// BenchmarkFig16 reproduces Figure 16: CDN vs origin download-delay
// CDF.
func BenchmarkFig16(b *testing.B) { benchTable(b, bench.Fig16) }

// BenchmarkMAWI reproduces the §6 MAWI-trace concurrency analysis.
func BenchmarkMAWI(b *testing.B) { benchTable(b, bench.MAWI) }

// BenchmarkControllerLatency reproduces the §6.1 request-handling
// measurement (Fig. 4 request on the Fig. 3 topology).
func BenchmarkControllerLatency(b *testing.B) { benchTable(b, bench.ControllerLatency) }

// BenchmarkHTTPvsHTTPS reproduces the §8 download-energy comparison.
func BenchmarkHTTPvsHTTPS(b *testing.B) { benchTable(b, bench.HTTPvsHTTPS) }
